//! The pluggable failure-detection layer: policies that turn node absences
//! into (or hold back) permanent-death declarations.
//!
//! The maintenance engine does not own a concrete detector; it owns a
//! [`DetectionPolicy`] trait object and consults it at three moments:
//!
//! 1. **Departure** — [`DetectionPolicy::node_down`] records the absence and
//!    returns the [`PendingDeclaration`] to schedule (when the departure is
//!    noticed at a probe boundary, and when the permanence timeout expires).
//! 2. **Declaration** — when the scheduled declaration event fires,
//!    [`DetectionPolicy::decide`] returns a [`DeclarationVerdict`]: cancel a
//!    stale event, declare the node dead now, or *hold* the declaration and
//!    re-check later (the outage-aware path).
//! 3. **Return** — [`DetectionPolicy::node_up`] bumps the node's generation so
//!    every pending or held declaration of the finished down period dies.
//!
//! Two policies ship: [`PerNodeTimeout`], the classic per-node permanence
//! timeout (the pre-refactor `FailureDetector` behaviour, extracted verbatim —
//! fixed-seed runs are byte-identical), and [`OutageAware`], which consults a
//! shared [`peerstripe_placement::DomainView`] and holds declarations while
//! most of a failure domain is absent — the correlated-absence signature of a
//! lab powering down — instead of writing off every member independently.

use crate::config::DetectorConfig;
use peerstripe_overlay::NodeRef;
use peerstripe_placement::DomainView;
use peerstripe_sim::SimTime;
use serde::{Deserialize, Serialize};

mod outage_aware;
mod per_node;

pub use outage_aware::{OutageAware, OutageAwareConfig};
pub use per_node::PerNodeTimeout;

/// A pending declaration handed back by [`DetectionPolicy::node_down`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDeclaration {
    /// The down generation this declaration belongs to.
    pub generation: u64,
    /// When the node is first noticed as down.
    pub detected_at: SimTime,
    /// When the node should be declared permanently dead if still away.
    pub declare_at: SimTime,
}

/// What to do when a scheduled declaration event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclarationVerdict {
    /// The event is stale (the node returned in the meantime); drop it.
    Cancel,
    /// Declare the node permanently dead now and write off its blocks.
    Declare,
    /// Correlated absence detected: hold the declaration and re-decide at
    /// `until`.  The engine reschedules the same declaration event; a return
    /// before then cancels it through the generation guard.
    Hold {
        /// When to re-evaluate the held declaration.
        until: SimTime,
    },
}

/// The failure-detection policy the maintenance engine drives.
///
/// Implementations must be deterministic functions of the call sequence (no
/// internal randomness): the engine's fixed-seed reproducibility depends on
/// it.
pub trait DetectionPolicy: std::fmt::Debug + Send {
    /// The detector's timing configuration.
    fn config(&self) -> &DetectorConfig;

    /// Record a departure at `now`; returns the declaration to schedule.
    fn node_down(&mut self, node: NodeRef, now: SimTime) -> PendingDeclaration;

    /// Record a return: invalidates every pending declaration of the down
    /// period that just ended.
    fn node_up(&mut self, node: NodeRef, now: SimTime);

    /// Decide the fate of a declaration event scheduled by [`node_down`]
    /// (or re-scheduled by an earlier [`DeclarationVerdict::Hold`]).
    ///
    /// [`node_down`]: DetectionPolicy::node_down
    fn decide(&mut self, node: NodeRef, generation: u64, now: SimTime) -> DeclarationVerdict;

    /// Since when the node has been down, if it is.
    fn down_since(&self, node: NodeRef) -> Option<SimTime>;

    /// Short label for sweep tables and reports.
    fn label(&self) -> String;
}

/// Which [`DetectionPolicy`] a [`crate::RepairConfig`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DetectionKind {
    /// [`PerNodeTimeout`]: every absence runs its own permanence timeout.
    PerNodeTimeout,
    /// [`OutageAware`]: correlated absences within a failure domain hold the
    /// members' declarations until the domain returns or the hold cap expires.
    OutageAware(OutageAwareConfig),
}

impl DetectionKind {
    /// Short label for sweep tables and reports.
    pub fn label(&self) -> String {
        match self {
            DetectionKind::PerNodeTimeout => "per-node".to_string(),
            DetectionKind::OutageAware(cfg) => {
                format!("outage-aware(θ={:.2})", cfg.domain_absence_threshold)
            }
        }
    }

    /// Instantiate the policy for `nodes` participants.
    ///
    /// `view` carries the failure-domain membership the outage-aware policy
    /// correlates over; an [`DomainView::unaffiliated`] view degrades
    /// [`OutageAware`] to exact per-node-timeout behaviour (no correlation
    /// information means nothing can be classified as an outage).
    pub fn build(
        &self,
        nodes: usize,
        config: DetectorConfig,
        view: DomainView,
    ) -> Box<dyn DetectionPolicy> {
        match self {
            DetectionKind::PerNodeTimeout => Box::new(PerNodeTimeout::new(nodes, config)),
            DetectionKind::OutageAware(cfg) => {
                Box::new(OutageAware::new(nodes, config, view, *cfg))
            }
        }
    }
}

/// The per-node down/generation bookkeeping every policy shares: who is down
/// since when, and the generation counter that invalidates declarations of
/// finished down periods.
#[derive(Debug, Clone)]
pub(crate) struct DownTracker {
    generation: Vec<u64>,
    down_since: Vec<Option<SimTime>>,
}

impl DownTracker {
    pub(crate) fn new(nodes: usize) -> Self {
        DownTracker {
            generation: vec![0; nodes],
            down_since: vec![None; nodes],
        }
    }

    /// Record a departure; returns the generation the down period runs under.
    pub(crate) fn down(&mut self, node: NodeRef, now: SimTime) -> u64 {
        self.down_since[node] = Some(now);
        self.generation[node]
    }

    /// Record a return: bumps the generation so pending declarations die.
    pub(crate) fn up(&mut self, node: NodeRef) {
        self.down_since[node] = None;
        self.generation[node] += 1;
    }

    /// True if the node is still down *and* the declaration belongs to the
    /// current down period (not a stale event from before a return).
    pub(crate) fn confirm(&self, node: NodeRef, generation: u64) -> bool {
        self.down_since[node].is_some() && self.generation[node] == generation
    }

    pub(crate) fn down_since(&self, node: NodeRef) -> Option<SimTime> {
        self.down_since[node]
    }
}

/// The probe-aligned declaration timing shared by every policy: a departure at
/// `now` is noticed at the next probe boundary plus the detection lag, and
/// cannot be declared before both that moment and the permanence timeout.
pub(crate) fn schedule_declaration(
    config: &DetectorConfig,
    now: SimTime,
    generation: u64,
) -> PendingDeclaration {
    let t = now.as_secs_f64();
    let p = config.probe_period_secs;
    // The next probe strictly after the departure notices it.
    let detected = (t / p).floor() * p + p + config.detection_lag_secs;
    let declare = detected.max(t + config.permanence_timeout_secs);
    PendingDeclaration {
        generation,
        detected_at: SimTime::from_secs_f64(detected),
        declare_at: SimTime::from_secs_f64(declare),
    }
}
