//! The outage-aware policy: correlated absence within a failure domain is an
//! outage, not a wave of independent deaths.
//!
//! Desktop grids fail in groups — a lab powers down overnight, a switch dies,
//! a building loses power over a weekend.  The per-node timeout declares every
//! member of a downed lab dead independently, triggering a full-domain
//! regeneration wave that is thrown away when the lab returns.  This policy
//! consults a shared [`DomainView`] at declaration time: when at least θ of
//! the node's domain went down *within the same probe window*, the absence is
//! classified as an outage and the declaration is **held** — re-evaluated
//! every hold period instead of fired.  A held declaration resolves one of
//! three ways:
//!
//! * the domain returns → the node's generation bumps and the held event
//!   cancels (no blocks written off, no repair traffic spent);
//! * enough of the domain returns that the absence stops looking correlated →
//!   the node is declared on its next re-evaluation (it really is gone);
//! * the hold cap expires → the node is declared regardless (a genuinely
//!   permanent mass departure — a lab decommissioned, not rebooted — must
//!   still be repaired).  No declaration is ever delayed past
//!   `permanence_timeout + hold_cap` after the departure.

use super::{schedule_declaration, DeclarationVerdict, DetectionPolicy, DownTracker};
use crate::config::DetectorConfig;
use crate::detection::PendingDeclaration;
use peerstripe_overlay::NodeRef;
use peerstripe_placement::DomainView;
use peerstripe_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Tuning of the outage classifier and its hold behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageAwareConfig {
    /// θ: the fraction of a domain that must be absent (with departures inside
    /// one outage window of each other) for the absence to classify as an
    /// outage.  At least two nodes must qualify regardless of θ — a one-node
    /// "domain outage" is just a down node.
    pub domain_absence_threshold: f64,
    /// How tightly clustered the departures must be (seconds) to count as one
    /// event.  A probe period or two: a lab breaker trips every member at
    /// once, so their departures land in the same probe window, while
    /// independent churn spreads out over hours.
    pub outage_window_secs: f64,
    /// How long a held declaration waits before re-evaluating (seconds).
    pub hold_period_secs: f64,
    /// Hard cap on total hold time past the permanence timeout (seconds): a
    /// node is always declared by `down_since + permanence_timeout +
    /// hold_cap_secs`, outage or not, so genuinely permanent mass departures
    /// still regenerate.
    pub hold_cap_secs: f64,
}

impl OutageAwareConfig {
    /// Half the domain gone within two default probe periods classifies an
    /// outage; held declarations re-check hourly and never extend past 24 h
    /// beyond the permanence timeout.
    pub fn default_desktop_grid() -> Self {
        OutageAwareConfig {
            domain_absence_threshold: 0.5,
            outage_window_secs: 600.0,
            hold_period_secs: 3_600.0,
            hold_cap_secs: 24.0 * 3_600.0,
        }
    }

    /// The same behaviour with a different absence threshold.
    pub fn with_threshold(mut self, theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "θ must be a fraction");
        self.domain_absence_threshold = theta;
        self
    }
}

/// Holds declarations while the node's failure domain looks like it suffered
/// an outage; see the module docs for the full protocol.
#[derive(Debug, Clone)]
pub struct OutageAware {
    config: DetectorConfig,
    outage: OutageAwareConfig,
    view: DomainView,
    tracker: DownTracker,
}

impl OutageAware {
    /// Create a detector for `nodes` participants over the given domain view.
    ///
    /// An [`DomainView::unaffiliated`] view is legal and degrades the policy
    /// to exact per-node-timeout behaviour: with no membership information,
    /// nothing can ever be classified as an outage.
    pub fn new(
        nodes: usize,
        config: DetectorConfig,
        view: DomainView,
        outage: OutageAwareConfig,
    ) -> Self {
        assert!(
            config.probe_period_secs > 0.0,
            "probe period must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&outage.domain_absence_threshold),
            "θ must be a fraction"
        );
        assert!(
            outage.hold_period_secs > 0.0,
            "hold period must be positive"
        );
        assert!(outage.hold_cap_secs >= 0.0, "hold cap must be non-negative");
        OutageAware {
            config,
            outage,
            view,
            tracker: DownTracker::new(nodes),
        }
    }

    /// True if `node`'s domain currently classifies as being in an outage:
    /// at least θ of its members (and at least two) are absent with
    /// departures clustered within one outage window of `node`'s own.
    pub fn outage_classified(&self, node: NodeRef) -> bool {
        let Some(down_at) = self.tracker.down_since(node) else {
            return false;
        };
        let Some(domain) = self.view.domain_of(node) else {
            return false;
        };
        let members = self.view.members(domain);
        let window = self.outage.outage_window_secs;
        let mine = down_at.as_secs_f64();
        let clustered = members
            .iter()
            .filter(|&&m| {
                self.tracker
                    .down_since(m)
                    .is_some_and(|t| (t.as_secs_f64() - mine).abs() <= window)
            })
            .count();
        // Epsilon-guarded ceiling: a mathematically integral θ·n can land a
        // hair above its true value in f64 (0.3 × 10 → 3.0000000000000004),
        // and a bare ceil() would then demand one member more than the
        // documented "≥ θ of the domain" threshold.
        let quorum =
            (self.outage.domain_absence_threshold * members.len() as f64 - 1e-9).ceil() as usize;
        clustered >= quorum.max(2)
    }

    /// The latest moment `node`'s current down period may be declared at: the
    /// permanence timeout plus the hold cap after the departure.
    fn hold_deadline(&self, down_at: SimTime) -> SimTime {
        down_at
            + SimTime::from_secs_f64(self.config.permanence_timeout_secs)
            + SimTime::from_secs_f64(self.outage.hold_cap_secs)
    }
}

impl DetectionPolicy for OutageAware {
    fn config(&self) -> &DetectorConfig {
        &self.config
    }

    fn node_down(&mut self, node: NodeRef, now: SimTime) -> PendingDeclaration {
        let generation = self.tracker.down(node, now);
        schedule_declaration(&self.config, now, generation)
    }

    fn node_up(&mut self, node: NodeRef, _now: SimTime) {
        self.tracker.up(node);
    }

    fn decide(&mut self, node: NodeRef, generation: u64, now: SimTime) -> DeclarationVerdict {
        if !self.tracker.confirm(node, generation) {
            return DeclarationVerdict::Cancel;
        }
        // confirm() guarantees the node is down.
        let down_at = self.tracker.down_since(node).expect("confirmed down"); // lint:allow(panic) -- confirm() above guarantees the node is tracked down
        let deadline = self.hold_deadline(down_at);
        if now >= deadline || !self.outage_classified(node) {
            // Past the hard cap, or the absence no longer looks correlated
            // (enough of the domain came back): the node really is gone.
            return DeclarationVerdict::Declare;
        }
        let until = (now + SimTime::from_secs_f64(self.outage.hold_period_secs)).min(deadline);
        DeclarationVerdict::Hold { until }
    }

    fn down_since(&self, node: NodeRef) -> Option<SimTime> {
        self.tracker.down_since(node)
    }

    fn label(&self) -> String {
        format!(
            "outage-aware(θ={:.2})",
            self.outage.domain_absence_threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_placement::Topology;

    fn config(timeout: f64) -> DetectorConfig {
        DetectorConfig {
            probe_period_secs: 100.0,
            detection_lag_secs: 10.0,
            permanence_timeout_secs: timeout,
            retry_floor_secs: 60.0,
        }
    }

    fn outage_config() -> OutageAwareConfig {
        OutageAwareConfig {
            domain_absence_threshold: 0.5,
            outage_window_secs: 200.0,
            hold_period_secs: 500.0,
            hold_cap_secs: 2_000.0,
        }
    }

    /// 12 nodes in domains of 4: {0..3}, {4..7}, {8..11}.
    fn detector(timeout: f64) -> OutageAware {
        let view = Topology::uniform_groups(12, 4).domain_view();
        OutageAware::new(12, config(timeout), view, outage_config())
    }

    #[test]
    fn lone_departures_are_declared_like_per_node() {
        let mut d = detector(1_000.0);
        let pending = d.node_down(0, SimTime::from_secs(250));
        assert_eq!(pending.detected_at, SimTime::from_secs(310));
        assert_eq!(pending.declare_at, SimTime::from_secs(1250));
        assert!(!d.outage_classified(0), "one node down is not an outage");
        assert_eq!(
            d.decide(0, pending.generation, pending.declare_at),
            DeclarationVerdict::Declare
        );
    }

    #[test]
    fn correlated_domain_absence_holds_declarations() {
        let mut d = detector(1_000.0);
        // The whole of domain 1 vanishes at once.
        let mut pendings = Vec::new();
        for node in 4..8 {
            pendings.push((node, d.node_down(node, SimTime::from_secs(300))));
        }
        assert!(d.outage_classified(4));
        let (node, p) = pendings[0];
        match d.decide(node, p.generation, p.declare_at) {
            DeclarationVerdict::Hold { until } => {
                assert_eq!(until, p.declare_at + SimTime::from_secs(500));
            }
            v => panic!("expected a hold, got {v:?}"),
        }
        // A node in a different (healthy) domain is still declared normally.
        let q = d.node_down(0, SimTime::from_secs(400));
        assert_eq!(
            d.decide(0, q.generation, q.declare_at),
            DeclarationVerdict::Declare
        );
    }

    #[test]
    fn quorum_at_exactly_theta_classifies() {
        // θ·n that is mathematically integral but inexact in f64: θ = 0.3
        // over a 10-member domain computes 3.0000000000000004, and a naive
        // ceil() would demand 4 members.  Exactly 3 clustered absences
        // (3/10 ≥ θ) must classify.
        let view = Topology::uniform_groups(10, 10).domain_view();
        let mut d = OutageAware::new(
            10,
            config(1_000.0),
            view,
            OutageAwareConfig {
                domain_absence_threshold: 0.3,
                ..outage_config()
            },
        );
        for node in 0..3 {
            d.node_down(node, SimTime::from_secs(300));
        }
        assert!(
            d.outage_classified(0),
            "3 of 10 down meets the θ=0.3 threshold exactly"
        );
    }

    #[test]
    fn domain_return_cancels_held_declarations() {
        let mut d = detector(1_000.0);
        let pendings: Vec<_> = (4..8)
            .map(|node| (node, d.node_down(node, SimTime::from_secs(300))))
            .collect();
        // The outage ends before the hold resolves: everyone returns.
        for node in 4..8 {
            d.node_up(node, SimTime::from_secs(900));
        }
        for (node, p) in pendings {
            assert_eq!(
                d.decide(node, p.generation, p.declare_at),
                DeclarationVerdict::Cancel,
                "node {node}: a finished outage must cancel"
            );
        }
    }

    #[test]
    fn partial_return_releases_the_survivors_declarations() {
        let mut d = detector(1_000.0);
        let pendings: Vec<_> = (4..8)
            .map(|node| (node, d.node_down(node, SimTime::from_secs(300))))
            .collect();
        // Three of four return; the fourth really died with the outage.
        for node in 5..8 {
            d.node_up(node, SimTime::from_secs(900));
        }
        let (node, p) = pendings[0];
        assert!(!d.outage_classified(node), "only 1/4 absent now");
        assert_eq!(
            d.decide(node, p.generation, p.declare_at),
            DeclarationVerdict::Declare,
            "uncorrelated absence is a real loss"
        );
    }

    #[test]
    fn the_hold_cap_bounds_every_delay() {
        let mut d = detector(1_000.0);
        let down_at = SimTime::from_secs(300);
        let pendings: Vec<_> = (4..8).map(|n| (n, d.node_down(n, down_at))).collect();
        let deadline = down_at + SimTime::from_secs(1_000 + 2_000);
        let (node, p) = pendings[0];
        let mut now = p.declare_at;
        let mut holds = 0;
        loop {
            match d.decide(node, p.generation, now) {
                DeclarationVerdict::Hold { until } => {
                    assert!(until > now, "holds must make progress");
                    assert!(until <= deadline, "no hold may pass the cap");
                    now = until;
                    holds += 1;
                    assert!(holds < 100, "hold chain must terminate");
                }
                DeclarationVerdict::Declare => break,
                DeclarationVerdict::Cancel => panic!("nothing returned"),
            }
        }
        assert!(holds > 1, "the outage must actually hold for a while");
        assert!(now <= deadline, "declared by the cap at the latest");
    }

    #[test]
    fn uncorrelated_slow_drain_is_not_an_outage() {
        let mut d = detector(10_000.0);
        // All of domain 2 is down, but the departures are hours apart —
        // independent churn, not a breaker trip.
        let pendings: Vec<_> = (8..12)
            .map(|n| {
                let at = SimTime::from_secs(300 + (n as u64 - 8) * 5_000);
                (n, d.node_down(n, at))
            })
            .collect();
        let (node, p) = pendings[0];
        assert!(
            !d.outage_classified(node),
            "spread departures never cluster"
        );
        assert_eq!(
            d.decide(node, p.generation, p.declare_at),
            DeclarationVerdict::Declare
        );
    }

    #[test]
    fn unaffiliated_views_degrade_to_per_node_behaviour() {
        let mut d = OutageAware::new(
            12,
            config(1_000.0),
            DomainView::unaffiliated(),
            outage_config(),
        );
        let pendings: Vec<_> = (0..12)
            .map(|n| (n, d.node_down(n, SimTime::from_secs(300))))
            .collect();
        for (node, p) in pendings {
            assert!(!d.outage_classified(node));
            assert_eq!(
                d.decide(node, p.generation, p.declare_at),
                DeclarationVerdict::Declare,
                "no view, no holds"
            );
        }
    }
}
