//! Event-driven churn & repair: the maintenance lifecycle of a contributory
//! store.
//!
//! The paper's reliability story rests on one sentence — "failed participants
//! trigger regeneration of the lost blocks from surviving ones" — and this
//! crate is that sentence made continuous: a [`MaintenanceEngine`] drives a
//! stored deployment through time on the shared discrete-event queue, with
//!
//! * a **churn process** ([`ChurnProcess`]) drawing node session/downtime
//!   lengths from closed-form distributions or an empirical
//!   [`peerstripe_trace::SessionTrace`], with a configurable fraction of
//!   departures being permanent (the disk never returns);
//! * a pluggable **detection layer** ([`DetectionPolicy`]) that notices
//!   departures at probe boundaries and decides when an absence becomes a
//!   permanent-death declaration: [`PerNodeTimeout`] judges every node
//!   independently, while [`OutageAware`] consults a shared
//!   [`peerstripe_placement::DomainView`] and *holds* declarations while a
//!   failure domain's members vanished together — the correlated-absence
//!   signature of a lab powering down — cancelling them wholesale when the
//!   domain returns;
//! * a **repair scheduler** ([`RepairScheduler`]) that triggers regeneration
//!   *eagerly* (on first confirmed loss) or *lazily* (only when a chunk's
//!   surviving blocks sink to `needed + k_min`), and charges every transfer
//!   against per-node upload/download [`peerstripe_sim::RateLimiter`] budgets
//!   so concurrent repairs queue and interfere;
//! * **regeneration executors** ([`RegenerationExecutor`]) that rebuild the
//!   actual block payloads through the erasure codecs' partial re-encode
//!   entry point on byte-carrying deployments, and re-place them as fresh
//!   block objects through the overlay placement path.
//!
//! Damage bookkeeping is shared with `peerstripe-core` through
//! [`peerstripe_core::DamageLedger`], so the single-wave Table 3 sweep
//! (`RegenerationSim`) and this engine answer "what did that failure cost"
//! identically.  The `repro repair-sweep` experiment sweeps policy ×
//! detection-timeout × bandwidth over this engine at up to the paper's
//! 10 000-node scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod detection;
pub mod engine;
pub mod executor;
pub mod scheduler;

pub use config::{
    BandwidthBudget, ChurnProcess, DetectorConfig, GroupedChurn, RepairConfig, RepairPolicy,
    SessionModel,
};
pub use detection::{
    DeclarationVerdict, DetectionKind, DetectionPolicy, OutageAware, OutageAwareConfig,
    PendingDeclaration, PerNodeTimeout,
};
pub use engine::{MaintenanceEngine, MaintenanceEvent, MaintenanceReport};
pub use executor::RegenerationExecutor;
pub use scheduler::{PlannedRepair, RepairScheduler};
