//! Configuration of the churn process, failure detector, repair policies and
//! bandwidth budgets.

use crate::detection::DetectionKind;
use peerstripe_placement::Topology;
use peerstripe_sim::dist::{Distribution, Exponential};
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_trace::SessionTrace;
use serde::{Deserialize, Serialize};

/// Where the churn process draws node session/downtime lengths from.
#[derive(Debug, Clone)]
pub enum SessionModel {
    /// Memoryless sessions and downtimes with the given means (seconds).
    Synthetic {
        /// Mean node uptime per session, in seconds.
        mean_session_secs: f64,
        /// Mean downtime between sessions, in seconds.
        mean_downtime_secs: f64,
    },
    /// Empirical durations drawn from a [`SessionTrace`] (the trace-derived
    /// mode: diurnal office machines, laptops, always-on lab nodes).
    Trace(SessionTrace),
}

impl SessionModel {
    /// The default desktop-grid parameters: 8 h mean sessions, 16 h mean
    /// downtimes (machines are up a third of the time, as in the office-hours
    /// regime the paper's Condor pool lives in).
    pub fn desktop_grid_default() -> Self {
        SessionModel::Synthetic {
            mean_session_secs: 8.0 * 3_600.0,
            mean_downtime_secs: 16.0 * 3_600.0,
        }
    }

    /// Draw one session (uptime) length in seconds.
    pub fn sample_session(&self, rng: &mut DetRng) -> f64 {
        match self {
            SessionModel::Synthetic {
                mean_session_secs, ..
            } => Exponential::new(1.0 / mean_session_secs).sample(rng),
            SessionModel::Trace(trace) => trace.sample_session(rng),
        }
    }

    /// Draw one downtime length in seconds.
    pub fn sample_downtime(&self, rng: &mut DetRng) -> f64 {
        match self {
            SessionModel::Synthetic {
                mean_downtime_secs, ..
            } => Exponential::new(1.0 / mean_downtime_secs).sample(rng),
            SessionModel::Trace(trace) => trace.sample_downtime(rng),
        }
    }
}

/// Correlated grouped churn: whole failure domains (labs, racks, buildings)
/// depart and return as units, alongside the independent per-node sessions.
///
/// Each domain of the topology draws outage events with exponential
/// inter-arrival times; an outage takes every live member down at once (a lab
/// powering down, a switch dying) and returns the *same* members when the
/// outage ends.  Group departures are transient — the disks come back — but
/// the failure detector does not know that, so a permanence timeout shorter
/// than the outage declares the whole domain dead and triggers a write-off
/// wave for every chunk that concentrated too many blocks there.
#[derive(Debug, Clone)]
pub struct GroupedChurn {
    /// The failure-domain topology whose domains fail as units.
    pub topology: Topology,
    /// Mean interval between outages, per domain, in seconds (measured from
    /// the end of the previous outage).
    pub mean_outage_interval_secs: f64,
    /// Mean duration of one outage, in seconds.
    pub mean_outage_downtime_secs: f64,
}

impl GroupedChurn {
    /// Grouped churn over a topology with the given mean outage interval and
    /// duration (hours).
    pub fn new(topology: Topology, mean_interval_hours: f64, mean_downtime_hours: f64) -> Self {
        assert!(mean_interval_hours > 0.0 && mean_downtime_hours > 0.0);
        GroupedChurn {
            topology,
            mean_outage_interval_secs: mean_interval_hours * 3_600.0,
            mean_outage_downtime_secs: mean_downtime_hours * 3_600.0,
        }
    }
}

/// The churn process: how nodes leave and return.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    /// Session/downtime length source.
    pub sessions: SessionModel,
    /// Probability that a departure is permanent (the disk never comes back).
    pub permanent_fraction: f64,
    /// Optional correlated grouped-churn mode: whole failure domains depart
    /// and return as units on top of the independent sessions.
    pub grouped: Option<GroupedChurn>,
}

impl ChurnProcess {
    /// Desktop-grid defaults with a 2 % permanent-departure rate.
    pub fn desktop_grid_default() -> Self {
        ChurnProcess {
            sessions: SessionModel::desktop_grid_default(),
            permanent_fraction: 0.02,
            grouped: None,
        }
    }

    /// Add a correlated grouped-churn mode.
    pub fn with_grouped(mut self, grouped: GroupedChurn) -> Self {
        self.grouped = Some(grouped);
        self
    }

    /// Flattened `key = value` entries for a
    /// [`peerstripe_telemetry::RunManifest`].
    pub fn manifest_entries(&self) -> Vec<(String, String)> {
        let mut entries = vec![(
            "churn.sessions".to_string(),
            match &self.sessions {
                SessionModel::Synthetic {
                    mean_session_secs,
                    mean_downtime_secs,
                } => format!("synthetic(up={mean_session_secs}s,down={mean_downtime_secs}s)"),
                SessionModel::Trace(_) => "trace".to_string(),
            },
        )];
        entries.push((
            "churn.permanent_fraction".to_string(),
            format!("{}", self.permanent_fraction),
        ));
        if let Some(grouped) = &self.grouped {
            entries.push((
                "churn.grouped.domains".to_string(),
                grouped.topology.domain_count().to_string(),
            ));
            entries.push((
                "churn.grouped.mean_outage_interval_secs".to_string(),
                format!("{}", grouped.mean_outage_interval_secs),
            ));
            entries.push((
                "churn.grouped.mean_outage_downtime_secs".to_string(),
                format!("{}", grouped.mean_outage_downtime_secs),
            ));
        }
        entries
    }
}

/// When regeneration is triggered for a damaged chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// Regenerate every lost block as soon as its loss is confirmed.
    Eager,
    /// Regenerate only once the surviving blocks of a chunk drop to
    /// `needed + margin` or fewer, then restore full redundancy in one batch.
    /// Batching amortises the decode reads over several rebuilt blocks and
    /// skips repairs that a returning transient node would have made moot.
    Lazy {
        /// Safety margin above the decode threshold (`k_min`): 0 waits until
        /// the chunk has no slack left, 1 keeps one loss of slack, …
        margin: usize,
    },
}

impl RepairPolicy {
    /// Short label used in sweep tables.
    pub fn label(&self) -> String {
        match self {
            RepairPolicy::Eager => "eager".to_string(),
            RepairPolicy::Lazy { margin } => format!("lazy(k={margin})"),
        }
    }

    /// How many blocks to regenerate now for a chunk with `placed` registered
    /// blocks (plus `in_flight` being rebuilt), a decode threshold of `needed`,
    /// and an original placement of `target` blocks.
    pub fn blocks_wanted(
        &self,
        placed: usize,
        in_flight: usize,
        needed: usize,
        target: usize,
    ) -> usize {
        let effective = placed + in_flight;
        match self {
            RepairPolicy::Eager => target.saturating_sub(effective),
            RepairPolicy::Lazy { margin } => {
                if effective <= needed + margin {
                    target.saturating_sub(effective)
                } else {
                    0
                }
            }
        }
    }
}

/// Failure-detector timing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Seconds between liveness probes; a departure is noticed at the next
    /// probe boundary after it happens.
    pub probe_period_secs: f64,
    /// Additional lag between a probe observing the departure and the detector
    /// reporting it (probe timeouts, gossip propagation).
    pub detection_lag_secs: f64,
    /// How long a node must stay away before it is declared permanently dead
    /// and its blocks are written off for regeneration.  The knob that trades
    /// false-positive repair traffic against the window of reduced redundancy.
    pub permanence_timeout_secs: f64,
    /// Floor on the deferred-repair retry period, in seconds.  A repair that
    /// cannot run (no decode sources or placement targets) retries after
    /// `max(probe_period_secs, retry_floor_secs)` — the floor keeps sub-minute
    /// probe configurations from flooding the event queue with retries, while
    /// staying an explicit knob instead of a hard-coded constant.
    pub retry_floor_secs: f64,
}

impl DetectorConfig {
    /// Probe every 5 minutes, 30 s lag, declare dead after 48 h away — well
    /// past the overnight/weekend downtimes of a desktop grid, so transient
    /// departures are almost never written off.
    pub fn default_desktop_grid() -> Self {
        DetectorConfig {
            probe_period_secs: 300.0,
            detection_lag_secs: 30.0,
            permanence_timeout_secs: 48.0 * 3_600.0,
            retry_floor_secs: 60.0,
        }
    }

    /// The same probing with a different permanence timeout.
    pub fn with_timeout(mut self, permanence_timeout_secs: f64) -> Self {
        self.permanence_timeout_secs = permanence_timeout_secs;
        self
    }

    /// The effective deferred-repair retry period: the probe period, floored.
    pub fn retry_period_secs(&self) -> f64 {
        self.probe_period_secs.max(self.retry_floor_secs)
    }

    /// Flattened `key = value` entries for a
    /// [`peerstripe_telemetry::RunManifest`].
    pub fn manifest_entries(&self) -> Vec<(String, String)> {
        vec![
            (
                "detector.probe_period_secs".to_string(),
                format!("{}", self.probe_period_secs),
            ),
            (
                "detector.detection_lag_secs".to_string(),
                format!("{}", self.detection_lag_secs),
            ),
            (
                "detector.permanence_timeout_secs".to_string(),
                format!("{}", self.permanence_timeout_secs),
            ),
            (
                "detector.retry_floor_secs".to_string(),
                format!("{}", self.retry_floor_secs),
            ),
        ]
    }
}

/// Per-node repair bandwidth budgets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BandwidthBudget {
    /// Upload budget per node, bytes per second.
    pub upload: ByteSize,
    /// Download budget per node, bytes per second.
    pub download: ByteSize,
}

impl BandwidthBudget {
    /// A symmetric budget.
    pub fn symmetric(rate: ByteSize) -> Self {
        BandwidthBudget {
            upload: rate,
            download: rate,
        }
    }
}

/// Everything the maintenance engine needs besides the churn process.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Regeneration trigger policy.
    pub policy: RepairPolicy,
    /// Failure-detector timing.
    pub detector: DetectorConfig,
    /// Which failure-detection policy judges absences (per-node timeout or
    /// the outage-aware correlated-absence classifier).
    pub detection: DetectionKind,
    /// Per-node repair bandwidth budgets.
    pub bandwidth: BandwidthBudget,
    /// Seconds between periodic availability/durability samples.
    pub sample_period_secs: f64,
}

impl RepairConfig {
    /// Eager repair, default per-node detector, 1 MB/s symmetric budgets,
    /// hourly samples.
    pub fn default_desktop_grid() -> Self {
        RepairConfig {
            policy: RepairPolicy::Eager,
            detector: DetectorConfig::default_desktop_grid(),
            detection: DetectionKind::PerNodeTimeout,
            bandwidth: BandwidthBudget::symmetric(ByteSize::mb(1)),
            sample_period_secs: 3_600.0,
        }
    }

    /// Use the given repair policy.
    pub fn with_policy(mut self, policy: RepairPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Use the given failure-detection policy.
    pub fn with_detection(mut self, detection: DetectionKind) -> Self {
        self.detection = detection;
        self
    }

    /// The effective configuration, flattened for a
    /// [`peerstripe_telemetry::RunManifest`] — the header record that makes
    /// every trace and sweep JSON self-describing.
    pub fn manifest_entries(&self) -> Vec<(String, String)> {
        let mut entries = vec![
            ("repair.policy".to_string(), self.policy.label()),
            ("repair.detection".to_string(), self.detection.label()),
            (
                "repair.bandwidth_up_bytes_per_sec".to_string(),
                self.bandwidth.upload.as_u64().to_string(),
            ),
            (
                "repair.bandwidth_down_bytes_per_sec".to_string(),
                self.bandwidth.download.as_u64().to_string(),
            ),
            (
                "repair.sample_period_secs".to_string(),
                format!("{}", self.sample_period_secs),
            ),
        ];
        entries.extend(self.detector.manifest_entries());
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sessions_match_their_mean() {
        let model = SessionModel::Synthetic {
            mean_session_secs: 1_000.0,
            mean_downtime_secs: 500.0,
        };
        let mut rng = DetRng::new(1);
        let n = 20_000;
        let mean_s: f64 = (0..n).map(|_| model.sample_session(&mut rng)).sum::<f64>() / n as f64;
        let mean_d: f64 = (0..n).map(|_| model.sample_downtime(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean_s - 1_000.0).abs() < 30.0, "mean session {mean_s}");
        assert!((mean_d - 500.0).abs() < 15.0, "mean downtime {mean_d}");
    }

    #[test]
    fn trace_mode_draws_from_the_trace() {
        let trace = SessionTrace::new(vec![60.0], vec![30.0]);
        let model = SessionModel::Trace(trace);
        let mut rng = DetRng::new(2);
        assert_eq!(model.sample_session(&mut rng), 60.0);
        assert_eq!(model.sample_downtime(&mut rng), 30.0);
    }

    #[test]
    fn eager_policy_always_tops_up() {
        let p = RepairPolicy::Eager;
        assert_eq!(p.blocks_wanted(6, 0, 4, 6), 0);
        assert_eq!(p.blocks_wanted(5, 0, 4, 6), 1);
        assert_eq!(p.blocks_wanted(5, 1, 4, 6), 0, "in-flight counts");
        assert_eq!(p.blocks_wanted(3, 0, 4, 6), 3);
    }

    #[test]
    fn lazy_policy_waits_for_the_threshold() {
        let p = RepairPolicy::Lazy { margin: 0 };
        assert_eq!(p.blocks_wanted(5, 0, 4, 6), 0, "above threshold: wait");
        assert_eq!(p.blocks_wanted(4, 0, 4, 6), 2, "at threshold: full top-up");
        assert_eq!(p.blocks_wanted(3, 0, 4, 6), 3);
        assert_eq!(p.blocks_wanted(4, 2, 4, 6), 0, "in-flight counts");
        let p1 = RepairPolicy::Lazy { margin: 1 };
        assert_eq!(p1.blocks_wanted(5, 0, 4, 6), 1, "margin 1 repairs earlier");
        assert_eq!(p1.label(), "lazy(k=1)");
        assert_eq!(RepairPolicy::Eager.label(), "eager");
    }
}
