//! The repair scheduler: charges every regeneration against per-node
//! upload/download bandwidth budgets so concurrent repairs queue and
//! interfere, and batches multi-block rebuilds of one chunk behind a single
//! set of decode reads.
//!
//! A repair of `b` blocks of one chunk works like the paper's Section 4.4
//! regeneration, made bandwidth-aware: a *rebuilder* node downloads the
//! chunk's decode threshold worth of surviving blocks (each source charges its
//! upload budget, the rebuilder its download budget), re-encodes the missing
//! blocks locally, keeps the first and pushes the remaining `b − 1` to other
//! targets (charging its upload and their downloads).  The repair completes
//! when the last of those transfers drains — so a node already busy with other
//! repairs stretches every repair it participates in.

use crate::config::{BandwidthBudget, RepairPolicy};
use peerstripe_overlay::NodeRef;
use peerstripe_sim::{ByteSize, RateLimiter, SimTime};

/// A scheduled regeneration: where the rebuilt blocks will land and when.
#[derive(Debug, Clone)]
pub struct PlannedRepair {
    /// The chunk being repaired.
    pub chunk: u32,
    /// `(node, block size)` for every block being rebuilt; the first entry is
    /// the rebuilder itself.
    pub placements: Vec<(NodeRef, ByteSize)>,
    /// Network bytes this repair moves (decode reads + pushed blocks).
    pub traffic: ByteSize,
    /// When the last transfer drains.
    pub done_at: SimTime,
}

/// Bandwidth-budgeted repair scheduling.
#[derive(Debug, Clone)]
pub struct RepairScheduler {
    policy: RepairPolicy,
    upload: Vec<RateLimiter>,
    download: Vec<RateLimiter>,
    in_flight_blocks: u64,
    scheduled_blocks: u64,
}

impl RepairScheduler {
    /// Create a scheduler with one upload and one download budget per node.
    pub fn new(nodes: usize, budget: BandwidthBudget, policy: RepairPolicy) -> Self {
        RepairScheduler {
            policy,
            upload: vec![RateLimiter::new(budget.upload); nodes],
            download: vec![RateLimiter::new(budget.download); nodes],
            in_flight_blocks: 0,
            scheduled_blocks: 0,
        }
    }

    /// The trigger policy this scheduler applies.
    pub fn policy(&self) -> &RepairPolicy {
        &self.policy
    }

    /// Blocks currently being rebuilt across all chunks.
    pub fn in_flight(&self) -> u64 {
        self.in_flight_blocks
    }

    /// Total blocks ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled_blocks
    }

    /// How long after `now` a node's upload pipe stays busy.
    pub fn upload_backlog(&self, node: NodeRef, now: SimTime) -> SimTime {
        self.upload[node].backlog(now)
    }

    /// Charge the transfers for rebuilding `targets.len()` blocks of `chunk`
    /// (each of `block_size`) on `targets[0]`, reading one block from every
    /// node in `sources`.
    pub fn schedule(
        &mut self,
        chunk: u32,
        block_size: ByteSize,
        sources: &[NodeRef],
        targets: &[NodeRef],
        now: SimTime,
    ) -> PlannedRepair {
        assert!(!targets.is_empty(), "a repair needs at least one target");
        assert!(!sources.is_empty(), "a repair needs at least one source");
        let rebuilder = targets[0];
        let mut done = now;
        // Decode reads: every source uploads one block, the rebuilder downloads
        // them all.
        for &s in sources {
            done = done.max(self.upload[s].reserve(block_size, now).done);
        }
        let read_bytes = block_size * sources.len() as u64;
        done = done.max(self.download[rebuilder].reserve(read_bytes, now).done);
        // Rebuilt blocks beyond the rebuilder's own copy are pushed out.
        let mut traffic = read_bytes;
        for &t in &targets[1..] {
            done = done.max(self.upload[rebuilder].reserve(block_size, now).done);
            done = done.max(self.download[t].reserve(block_size, now).done);
            traffic += block_size;
        }
        self.in_flight_blocks += targets.len() as u64;
        self.scheduled_blocks += targets.len() as u64;
        PlannedRepair {
            chunk,
            placements: targets.iter().map(|&t| (t, block_size)).collect(),
            traffic,
            done_at: done,
        }
    }

    /// Mark `blocks` rebuilt blocks as no longer in flight.
    pub fn complete(&mut self, blocks: u64) {
        self.in_flight_blocks = self.in_flight_blocks.saturating_sub(blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(rate: ByteSize) -> RepairScheduler {
        RepairScheduler::new(8, BandwidthBudget::symmetric(rate), RepairPolicy::Eager)
    }

    #[test]
    fn single_block_repair_times_the_slowest_pipe() {
        let mut s = scheduler(ByteSize::mb(1));
        let now = SimTime::from_secs(0);
        // 4 sources of 1 MB each: sources upload in parallel (1 s each), the
        // rebuilder downloads 4 MB serially (4 s) — the bottleneck.
        let plan = s.schedule(0, ByteSize::mb(1), &[1, 2, 3, 4], &[0], now);
        assert_eq!(plan.done_at, SimTime::from_secs(4));
        assert_eq!(plan.traffic, ByteSize::mb(4));
        assert_eq!(plan.placements, vec![(0, ByteSize::mb(1))]);
        assert_eq!(s.in_flight(), 1);
        s.complete(1);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.scheduled(), 1);
    }

    #[test]
    fn batched_repair_amortises_the_decode_reads() {
        // Rebuilding two blocks in one batch: 4 MB of reads + 1 MB push,
        // versus 8 MB of reads for two eager single-block repairs.
        let mut batched = scheduler(ByteSize::mb(1));
        let plan = batched.schedule(0, ByteSize::mb(1), &[1, 2, 3, 4], &[0, 5], SimTime::ZERO);
        assert_eq!(plan.traffic, ByteSize::mb(5));
        assert_eq!(plan.placements.len(), 2);
        let mut eager = scheduler(ByteSize::mb(1));
        let a = eager.schedule(0, ByteSize::mb(1), &[1, 2, 3, 4], &[0], SimTime::ZERO);
        let b = eager.schedule(0, ByteSize::mb(1), &[1, 2, 3, 4], &[5], SimTime::ZERO);
        assert_eq!(a.traffic + b.traffic, ByteSize::mb(8));
    }

    #[test]
    fn concurrent_repairs_queue_on_shared_budgets() {
        let mut s = scheduler(ByteSize::mb(1));
        let now = SimTime::ZERO;
        let first = s.schedule(0, ByteSize::mb(2), &[1], &[0], now);
        assert_eq!(first.done_at, SimTime::from_secs(2));
        // The second repair reads from the same source, whose upload pipe is
        // still draining the first: it cannot finish before second 4.
        let second = s.schedule(1, ByteSize::mb(2), &[1], &[2], now);
        assert_eq!(second.done_at, SimTime::from_secs(4));
        assert!(s.upload_backlog(1, now) == SimTime::from_secs(4));
        // An unrelated pair of nodes is unaffected.
        let third = s.schedule(2, ByteSize::mb(2), &[5], &[6], now);
        assert_eq!(third.done_at, SimTime::from_secs(2));
    }
}
