//! Regeneration executors: the byte-level end of a repair.
//!
//! The engine plans *when* and *where* blocks are rebuilt; the executor is the
//! piece that actually reconstructs their payloads, by pulling the surviving
//! codec blocks of a chunk off live nodes and running them through the
//! matching [`ErasureCode::reencode`] entry point (XOR, online or
//! Reed–Solomon), then re-placing them through the overlay placement path
//! ([`RegenerationExecutor::repair_chunk`]).  Large-scale sweeps run
//! placement-only (sizes, no bytes); byte-carrying deployments — the
//! examples, the integration tests, a real deployment — use this to produce
//! and place the replacement payloads.

use peerstripe_core::client::{pack_payload, unpack_payload};
use peerstripe_core::{BlockPlacement, ChunkPlacement, CodingPolicy, ObjectName, StorageBackend};
use peerstripe_erasure::{DecodeError, EncodedBlock, ErasureCode};
use peerstripe_overlay::NodeRef;
use peerstripe_placement::{OverlayRandom, PlacementStrategy, RepairRequest, Topology};
use peerstripe_sim::{ByteSize, DetRng};

/// Rebuilds lost block payloads through a coding policy's codec.
pub struct RegenerationExecutor {
    codec: Box<dyn ErasureCode>,
    /// The policy's tolerable losses per chunk — the per-domain block cap for
    /// domain-aware re-placement.  Taken from the policy, not from a chunk's
    /// current block list: that list retains dead entries and grows with
    /// every repair, so deriving the cap from it would inflate it.
    tolerable: usize,
}

impl RegenerationExecutor {
    /// Build the executor for a coding policy, dividing each chunk into
    /// `source_blocks` codec blocks (must match the deployment's
    /// `data_path_blocks` so indices line up).
    pub fn new(policy: &CodingPolicy, source_blocks: usize) -> Self {
        RegenerationExecutor {
            codec: policy.codec(source_blocks),
            tolerable: policy.tolerable_losses(),
        }
    }

    /// The codec this executor re-encodes through.
    pub fn codec(&self) -> &dyn ErasureCode {
        self.codec.as_ref()
    }

    /// Gather the codec blocks of `chunk` that live nodes still serve.
    ///
    /// Generic over [`StorageBackend`], so the same regeneration code pulls
    /// survivors from the in-process simulator or live TCP daemons.
    pub fn surviving_blocks<B: StorageBackend>(
        &self,
        backend: &B,
        chunk: &ChunkPlacement,
    ) -> Vec<EncodedBlock> {
        let mut blocks = Vec::new();
        for placement in &chunk.blocks {
            if let Some(object) = backend.fetch_block(placement.node, &placement.name) {
                if let Some(payload) = &object.payload {
                    blocks.extend(unpack_payload(payload));
                }
            }
        }
        blocks
    }

    /// Rebuild every codec block of `chunk` that no live node currently holds,
    /// returning them packed as one replacement block-object payload (the
    /// format [`pack_payload`] defines), or the decode error when the
    /// survivors are insufficient — including `NotEnoughBlocks` when every
    /// holder is gone.  `Ok(None)` means nothing is missing, or the deployment
    /// is placement-only (live holders exist but carry no payloads).
    pub fn rebuild_missing<B: StorageBackend>(
        &self,
        backend: &B,
        chunk: &ChunkPlacement,
    ) -> Result<Option<Vec<u8>>, DecodeError> {
        let mut any_object = false;
        for placement in &chunk.blocks {
            if backend
                .fetch_block(placement.node, &placement.name)
                .is_some()
            {
                any_object = true;
                break;
            }
        }
        let surviving = self.surviving_blocks(backend, chunk);
        if surviving.is_empty() {
            // Distinguish "placement-only deployment" (objects reachable but
            // size-only) from "every holder is dead": the latter is a loss the
            // caller must see, not a silent no-op.
            return if any_object {
                Ok(None)
            } else {
                Err(DecodeError::NotEnoughBlocks {
                    have: 0,
                    need: self.codec.min_decode_blocks(),
                })
            };
        }
        let present: std::collections::BTreeSet<u32> = surviving.iter().map(|b| b.index).collect();
        let missing: Vec<u32> = (0..self.codec.encoded_blocks() as u32)
            .filter(|i| !present.contains(i))
            .collect();
        if missing.is_empty() {
            return Ok(None);
        }
        let rebuilt = self
            .codec
            .reencode(&surviving, chunk.size.as_u64() as usize, &missing)?;
        Ok(Some(pack_payload(&rebuilt)))
    }

    /// Full byte-level repair of one chunk through the default placement
    /// (oblivious [`OverlayRandom`], no topology).  See
    /// [`RegenerationExecutor::repair_chunk_with`].
    pub fn repair_chunk<B: StorageBackend>(
        &self,
        backend: &mut B,
        chunk: &mut ChunkPlacement,
    ) -> Result<Option<BlockPlacement>, DecodeError> {
        let mut strategy = OverlayRandom::new();
        self.repair_chunk_with(backend, chunk, &mut strategy, None)
    }

    /// Full byte-level repair of one chunk: rebuild the missing codec blocks
    /// from live survivors and re-place them as a fresh block object through
    /// the given placement strategy.  The target never collocates with a live
    /// block of the same chunk, and with a topology the strategy also skips
    /// domains already at the chunk's block cap.  Updates `chunk` with the
    /// new placement and returns it; `Ok(None)` means nothing needed
    /// rebuilding (or the deployment is placement-only, or no eligible target
    /// exists right now — the caller retries later).
    pub fn repair_chunk_with<B: StorageBackend>(
        &self,
        backend: &mut B,
        chunk: &mut ChunkPlacement,
        strategy: &mut dyn PlacementStrategy,
        topology: Option<&Topology>,
    ) -> Result<Option<BlockPlacement>, DecodeError> {
        let Some(payload) = self.rebuild_missing(backend, chunk)? else {
            return Ok(None);
        };
        // Name the replacement with a fresh ECB number, as Section 4.4's
        // "functionally equal" recreated block.
        let (file, chunk_no) = chunk
            .blocks
            .iter()
            .find_map(|b| match &b.name {
                ObjectName::Block { file, chunk, .. } => Some((file.clone(), *chunk)),
                ObjectName::Chunk { file, chunk } => Some((file.clone(), *chunk)),
                _ => None,
            })
            .expect("a chunk with rebuilt blocks has at least one named block"); // lint:allow(panic) -- rebuilt blocks exist only for chunks with named blocks
        let next_ecb = chunk
            .blocks
            .iter()
            .map(|b| match &b.name {
                ObjectName::Block { ecb, .. } => *ecb + 1,
                _ => 1,
            })
            .max()
            .unwrap_or(0);
        let name = ObjectName::block(file, chunk_no, next_ecb);
        let size = ByteSize::bytes(payload.len() as u64);
        let key = name.key();
        // A rebuilt block must never land on a node already holding a live
        // block of its chunk — that would silently shrink the chunk's failure
        // tolerance.
        let holders: Vec<NodeRef> = chunk
            .blocks
            .iter()
            .map(|b| b.node)
            .filter(|&n| backend.is_alive(n))
            .collect();
        let domain_cap = if topology.is_some() {
            self.tolerable.max(1)
        } else {
            usize::MAX
        };
        let request = RepairRequest {
            want: 1,
            size,
            holders: &holders,
            domain_cap,
        };
        let mut rng = DetRng::new(key.seed());
        let Some(node) = strategy
            .repair_targets(&*backend, topology, &request, &mut rng)
            .into_iter()
            .next()
        else {
            // No eligible live node with space right now; the caller retries.
            return Ok(None);
        };
        if backend
            .store_block(node, key, name.clone(), size, Some(payload))
            .is_err()
        {
            return Ok(None);
        }
        let placement = BlockPlacement {
            name,
            node,
            size,
            domain: topology.and_then(|t| t.domain_of(node)),
        };
        chunk.blocks.push(placement.clone());
        Ok(Some(placement))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_core::{ClusterConfig, PeerStripe, PeerStripeConfig, StorageSystem};
    use peerstripe_sim::{ByteSize, DetRng};
    use peerstripe_trace::CapacityModel;

    fn byte_deployment(policy: CodingPolicy, seed: u64) -> (PeerStripe, Vec<u8>) {
        let mut rng = DetRng::new(seed);
        let cluster = ClusterConfig {
            nodes: 40,
            capacity: CapacityModel::Fixed(ByteSize::mb(200)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(policy));
        let data: Vec<u8> = (0..300_000).map(|_| rng.next_u32() as u8).collect();
        assert!(ps.store_data("volume", &data).is_stored());
        (ps, data)
    }

    #[test]
    fn rebuilds_lost_blocks_for_every_codec() {
        for (policy, seed) in [
            (CodingPolicy::xor_2_3(), 1u64),
            (CodingPolicy::online_default(), 2),
            (CodingPolicy::rs_default(), 3),
        ] {
            let (mut ps, data) = byte_deployment(policy, seed);
            let executor = RegenerationExecutor::new(&policy, ps.config().data_path_blocks);
            // Fail a node holding a block of the first chunk.
            let victim = ps.manifest("volume").unwrap().chunks[0].blocks[0].node;
            ps.cluster_mut().fail_node(victim);
            let chunk = ps.manifest("volume").unwrap().chunks[0].clone();
            let payload = executor
                .rebuild_missing(ps.cluster(), &chunk)
                .unwrap_or_else(|e| panic!("{}: rebuild failed: {e}", executor.codec().name()))
                .expect("blocks were missing");
            // The rebuilt payload plus the survivors decode the chunk exactly.
            let mut blocks = executor.surviving_blocks(ps.cluster(), &chunk);
            blocks.extend(unpack_payload(&payload));
            let decoded = executor
                .codec()
                .decode(&blocks, chunk.size.as_u64() as usize)
                .unwrap();
            let lo = 0usize;
            let hi = chunk.size.as_u64() as usize;
            assert_eq!(
                decoded[..],
                data[lo..hi],
                "{} chunk differs",
                policy.label()
            );
        }
    }

    #[test]
    fn nothing_missing_means_no_work() {
        let policy = CodingPolicy::rs_default();
        let (ps, _) = byte_deployment(policy, 4);
        let executor = RegenerationExecutor::new(&policy, ps.config().data_path_blocks);
        let chunk = ps.manifest("volume").unwrap().chunks[0].clone();
        assert!(executor
            .rebuild_missing(ps.cluster(), &chunk)
            .unwrap()
            .is_none());
    }

    #[test]
    fn placement_only_deployments_have_nothing_to_rebuild() {
        let mut rng = DetRng::new(5);
        let cluster = ClusterConfig {
            nodes: 30,
            capacity: CapacityModel::Fixed(ByteSize::gb(1)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let policy = CodingPolicy::xor_2_3();
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(policy));
        assert!(ps
            .store_file(&peerstripe_trace::FileRecord::new("f", ByteSize::mb(100)))
            .is_stored());
        let executor = RegenerationExecutor::new(&policy, ps.config().data_path_blocks);
        let chunk = ps.manifest("f").unwrap().chunks[0].clone();
        assert!(executor
            .rebuild_missing(ps.cluster(), &chunk)
            .unwrap()
            .is_none());
    }

    #[test]
    fn repair_chunk_replaces_lost_blocks_through_the_placement_path() {
        let policy = CodingPolicy::xor_2_3();
        let (mut ps, data) = byte_deployment(policy, 7);
        let executor = RegenerationExecutor::new(&policy, ps.config().data_path_blocks);
        let mut chunk = ps.manifest("volume").unwrap().chunks[0].clone();
        let victim = chunk.blocks[0].node;
        ps.cluster_mut().fail_node(victim);
        let blocks_before = chunk.blocks.len();
        let placement = executor
            .repair_chunk(ps.cluster_mut(), &mut chunk)
            .unwrap()
            .expect("a block was missing and must be re-placed");
        // The replacement landed on a live node, is really stored there, and
        // carries a fresh ECB number.
        assert!(ps.cluster().overlay().is_alive(placement.node));
        assert!(ps.cluster().holds(placement.node, &placement.name));
        assert_eq!(chunk.blocks.len(), blocks_before + 1);
        // The chunk decodes bit-for-bit from its updated placement alone.
        let blocks = executor.surviving_blocks(ps.cluster(), &chunk);
        let decoded = executor
            .codec()
            .decode(&blocks, chunk.size.as_u64() as usize)
            .unwrap();
        assert_eq!(decoded[..], data[..chunk.size.as_u64() as usize]);
        // Running it again finds nothing missing.
        assert!(executor
            .repair_chunk(ps.cluster_mut(), &mut chunk)
            .unwrap()
            .is_none());
    }

    #[test]
    fn losing_every_holder_is_an_error_not_a_no_op() {
        let policy = CodingPolicy::xor_2_3();
        let (mut ps, _) = byte_deployment(policy, 8);
        let executor = RegenerationExecutor::new(&policy, ps.config().data_path_blocks);
        let chunk = ps.manifest("volume").unwrap().chunks[0].clone();
        let mut victims: Vec<_> = chunk.blocks.iter().map(|b| b.node).collect();
        victims.sort_unstable();
        victims.dedup();
        for v in victims {
            ps.cluster_mut().fail_node(v);
        }
        assert!(matches!(
            executor.rebuild_missing(ps.cluster(), &chunk),
            Err(DecodeError::NotEnoughBlocks { have: 0, .. })
        ));
    }

    #[test]
    fn insufficient_survivors_surface_the_decode_error() {
        let policy = CodingPolicy::rs_default();
        let (mut ps, _) = byte_deployment(policy, 6);
        let executor = RegenerationExecutor::new(&policy, ps.config().data_path_blocks);
        let chunk = ps.manifest("volume").unwrap().chunks[0].clone();
        // Kill more distinct holders than the code tolerates.
        let mut victims: Vec<_> = chunk.blocks.iter().map(|b| b.node).collect();
        victims.sort_unstable();
        victims.dedup();
        victims.truncate(3);
        assert_eq!(victims.len(), 3, "need three distinct holders");
        for v in victims {
            ps.cluster_mut().fail_node(v);
        }
        assert!(executor.rebuild_missing(ps.cluster(), &chunk).is_err());
    }
}
