//! The continuous-time maintenance engine.
//!
//! Drives a stored deployment through churn on the shared
//! [`peerstripe_sim::EventQueue`]: nodes depart and return on sampled
//! session/downtime lengths, the pluggable [`crate::DetectionPolicy`] turns
//! long absences into permanent-death declarations (or holds them while a
//! failure domain looks like it suffered an outage), and the
//! [`crate::RepairScheduler`] regenerates the declared-lost blocks under
//! per-node bandwidth budgets, placing them through the overlay placement
//! path.  Availability (live blocks above the decode threshold) and
//! durability (registered blocks above it) are tracked incrementally per
//! event, so a 10 000-node run costs O(blocks touched) per event rather than
//! a scan per sample.
//!
//! The engine is split along its three concerns:
//!
//! * [`core`](self) — the [`MaintenanceEngine`] itself: construction, the
//!   run loop, repair triggering, and the summary [`MaintenanceReport`];
//! * `events` — the [`MaintenanceEvent`] alphabet and the per-event handlers
//!   (departures, returns, group outages, declaration verdicts, repair
//!   completions);
//! * `accounting` — the incremental availability bookkeeping, the
//!   wasted-repair attribution ledger, and the full-recomputation consistency
//!   check the property tests lean on.

mod accounting;
mod core;
mod events;

pub use self::core::{MaintenanceEngine, MaintenanceReport};
pub use events::MaintenanceEvent;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        BandwidthBudget, ChurnProcess, DetectorConfig, RepairConfig, RepairPolicy, SessionModel,
    };
    use crate::detection::{DetectionKind, OutageAwareConfig};
    use peerstripe_core::{
        ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem,
    };
    use peerstripe_sim::{ByteSize, DetRng, SimTime};
    use peerstripe_trace::{CapacityModel, FileRecord};

    fn loaded(nodes: usize, files: usize, seed: u64) -> PeerStripe {
        let mut rng = DetRng::new(seed);
        let cluster = ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(
            cluster,
            PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
        );
        for i in 0..files {
            assert!(ps
                .store_file(&FileRecord::new(format!("file-{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        ps
    }

    fn config(policy: RepairPolicy, timeout_secs: f64) -> RepairConfig {
        RepairConfig {
            policy,
            detector: DetectorConfig {
                probe_period_secs: 60.0,
                detection_lag_secs: 10.0,
                permanence_timeout_secs: timeout_secs,
                retry_floor_secs: 60.0,
            },
            detection: DetectionKind::PerNodeTimeout,
            bandwidth: BandwidthBudget::symmetric(ByteSize::mb(8)),
            sample_period_secs: 1_800.0,
        }
    }

    fn churn(permanent_fraction: f64) -> ChurnProcess {
        ChurnProcess {
            sessions: SessionModel::Synthetic {
                mean_session_secs: 4.0 * 3_600.0,
                mean_downtime_secs: 2.0 * 3_600.0,
            },
            permanent_fraction,
            grouped: None,
        }
    }

    fn engine(policy: RepairPolicy, permanent_fraction: f64, seed: u64) -> MaintenanceEngine {
        let ps = loaded(80, 60, seed);
        let manifests = ps.manifests().clone();
        MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn(permanent_fraction),
            // Permanence timeout well past the 2 h mean downtime, as a sanely
            // operated deployment would set it.
            config(policy, 12.0 * 3_600.0),
            seed,
        )
    }

    #[test]
    fn pure_transient_churn_loses_nothing_without_declarations() {
        // Permanence timeout far beyond every downtime and no permanent
        // departures: the engine must ride out the churn with zero loss and
        // zero repair traffic.
        let ps = loaded(60, 40, 5);
        let manifests = ps.manifests().clone();
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn(0.0),
            config(RepairPolicy::Eager, 1e9),
            5,
        );
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        assert!(report.events > 100, "churn must actually happen");
        assert_eq!(report.files_lost, 0);
        assert_eq!(report.repair_bytes, ByteSize::ZERO);
        assert_eq!(report.permanent_failures, 0);
        assert!(report.transient_departures > 0);
        assert!(report.availability_mean_pct <= 100.0);
        assert!(report.availability_min_pct >= 0.0);
    }

    #[test]
    fn permanent_failures_trigger_bandwidth_charged_repairs() {
        let mut engine = engine(RepairPolicy::Eager, 0.05, 7);
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        assert!(report.permanent_failures > 0);
        assert!(
            report.blocks_regenerated > 0,
            "declared losses must be repaired: {report:?}"
        );
        assert!(report.repair_bytes > ByteSize::ZERO);
        assert!(report.repair_per_useful_byte > 0.0);
        // Eager repair keeps durability high under moderate permanent churn.
        assert!(
            report.files_lost < report.files_total / 2,
            "repair must save most files: {report:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let mut a = engine(RepairPolicy::Lazy { margin: 1 }, 0.05, 11);
        let mut b = engine(RepairPolicy::Lazy { margin: 1 }, 0.05, 11);
        a.run_for(SimTime::from_secs(24 * 3_600));
        b.run_for(SimTime::from_secs(24 * 3_600));
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.events, rb.events);
        assert_eq!(ra.repair_bytes, rb.repair_bytes);
        assert_eq!(ra.files_lost, rb.files_lost);
        assert_eq!(ra.false_declarations, rb.false_declarations);
        assert_eq!(ra.transient_departures, rb.transient_departures);
    }

    #[test]
    fn aggressive_timeouts_cause_false_declarations() {
        // A 5-minute permanence timeout against multi-hour downtimes: nearly
        // every transient departure is falsely declared dead.
        let ps = loaded(60, 40, 13);
        let manifests = ps.manifests().clone();
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn(0.0),
            config(RepairPolicy::Eager, 300.0),
            13,
        );
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        assert!(
            report.false_declarations > 0,
            "short timeout must misfire: {report:?}"
        );
        assert!(
            report.repair_bytes > ByteSize::ZERO,
            "false declarations cost repair traffic"
        );
        assert!(
            report.wasted_repair_bytes > ByteSize::ZERO,
            "repairs for nodes that returned are accounted wasted: {report:?}"
        );
        assert!(report.wasted_repair_bytes <= report.repair_bytes);
    }

    #[test]
    fn group_outages_take_whole_domains_down_and_bring_them_back() {
        use peerstripe_placement::Topology;
        // Individual sessions so long they never expire inside the run: every
        // departure in this simulation is a group outage.
        let ps = loaded(60, 40, 21);
        let manifests = ps.manifests().clone();
        let topology = Topology::uniform_groups(60, 10);
        let churn = ChurnProcess {
            sessions: SessionModel::Synthetic {
                mean_session_secs: 1e12,
                mean_downtime_secs: 3_600.0,
            },
            permanent_fraction: 0.0,
            grouped: Some(crate::GroupedChurn::new(topology.clone(), 8.0, 3.0)),
        };
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn,
            // Timeout far beyond every outage: nothing is ever declared dead.
            config(RepairPolicy::Eager, 1e9),
            21,
        );
        engine.run_for(SimTime::from_secs(72 * 3_600));
        let report = engine.report();
        assert!(report.group_outages > 0, "outages must fire: {report:?}");
        assert!(report.group_departures > 0);
        assert_eq!(report.transient_departures, 0, "sessions never expire");
        assert_eq!(report.permanent_failures, 0);
        assert_eq!(report.files_lost, 0, "outages are transient");
        assert_eq!(report.repair_bytes, ByteSize::ZERO, "nothing declared dead");
        assert!(
            report.availability_min_pct < 100.0,
            "outages hurt availability"
        );
        assert!(engine.accounting_is_consistent());
        // Every down node sits in a domain currently in outage: group events
        // touch exactly their members.
        for node in 0..60 {
            if !engine.cluster().overlay().is_alive(node) {
                let domain = topology.domain_of(node).unwrap();
                assert!(
                    engine.group_outage_active(domain),
                    "node {node} is down outside an outage of its domain"
                );
            }
        }
    }

    #[test]
    fn aggressive_timeouts_turn_group_outages_into_declaration_waves() {
        use peerstripe_placement::Topology;
        let ps = loaded(60, 40, 23);
        let manifests = ps.manifests().clone();
        let churn = ChurnProcess {
            sessions: SessionModel::Synthetic {
                mean_session_secs: 1e12,
                mean_downtime_secs: 3_600.0,
            },
            permanent_fraction: 0.0,
            // 12 h outages against a 2 h permanence timeout: every outage
            // writes the whole domain off and triggers a regeneration wave.
            grouped: Some(crate::GroupedChurn::new(
                Topology::uniform_groups(60, 10),
                24.0,
                12.0,
            )),
        };
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn,
            config(RepairPolicy::Eager, 2.0 * 3_600.0),
            23,
        );
        engine.run_for(SimTime::from_secs(72 * 3_600));
        let report = engine.report();
        assert!(report.group_outages > 0);
        assert!(
            report.false_declarations > 0,
            "returning domains were written off: {report:?}"
        );
        assert!(report.repair_bytes > ByteSize::ZERO);
        assert!(
            report.wasted_repair_bytes > ByteSize::ZERO,
            "thrown-away regeneration waves must be measured: {report:?}"
        );
        assert!(engine.accounting_is_consistent());
    }

    #[test]
    fn outage_aware_detection_rides_out_declaration_waves() {
        use peerstripe_placement::Topology;
        // The exact scenario of the previous test, but with the outage-aware
        // policy: every declaration of a downed domain is held, the domain
        // returns before the hold cap, and no repair traffic is ever spent.
        let build = |detection: DetectionKind| {
            let ps = loaded(60, 40, 23);
            let manifests = ps.manifests().clone();
            let churn = ChurnProcess {
                sessions: SessionModel::Synthetic {
                    mean_session_secs: 1e12,
                    mean_downtime_secs: 3_600.0,
                },
                permanent_fraction: 0.0,
                grouped: Some(crate::GroupedChurn::new(
                    Topology::uniform_groups(60, 10),
                    24.0,
                    12.0,
                )),
            };
            MaintenanceEngine::new(
                ps.into_cluster(),
                &manifests,
                churn,
                config(RepairPolicy::Eager, 2.0 * 3_600.0).with_detection(detection),
                23,
            )
        };
        let mut aware = build(DetectionKind::OutageAware(OutageAwareConfig {
            // Hold cap beyond any outage this run draws: holds always cancel.
            hold_cap_secs: 1e9,
            ..OutageAwareConfig::default_desktop_grid()
        }));
        aware.run_for(SimTime::from_secs(72 * 3_600));
        let report = aware.report();
        assert!(report.group_outages > 0);
        assert!(
            report.declarations_held > 0,
            "outages must be classified and held: {report:?}"
        );
        assert!(
            report.held_cancelled > 0,
            "returning domains must cancel their holds: {report:?}"
        );
        assert_eq!(report.false_declarations, 0, "nothing is written off");
        assert_eq!(report.repair_bytes, ByteSize::ZERO, "no wave, no traffic");
        assert_eq!(report.wasted_repair_bytes, ByteSize::ZERO);
        assert_eq!(report.files_lost, 0);
        assert!(aware.accounting_is_consistent());

        // And the per-node policy on the identical run wastes real traffic.
        let mut naive = build(DetectionKind::PerNodeTimeout);
        naive.run_for(SimTime::from_secs(72 * 3_600));
        let naive_report = naive.report();
        assert!(naive_report.repair_bytes > ByteSize::ZERO);
        assert!(naive_report.false_declarations > 0);
    }

    #[test]
    fn outage_aware_still_declares_permanent_mass_departures() {
        use crate::detection::{DetectionPolicy, OutageAware};
        use peerstripe_placement::Topology;
        // A whole domain departs permanently (decommissioned, not rebooted):
        // the hold cap must eventually release the declarations so the data
        // is regenerated.  Driven at the policy level for precision, and at
        // the engine level by the property tests.
        let topology = Topology::uniform_groups(20, 10);
        let mut policy = OutageAware::new(
            20,
            DetectorConfig {
                probe_period_secs: 300.0,
                detection_lag_secs: 30.0,
                permanence_timeout_secs: 4.0 * 3_600.0,
                retry_floor_secs: 60.0,
            },
            topology.domain_view(),
            OutageAwareConfig {
                domain_absence_threshold: 0.5,
                outage_window_secs: 600.0,
                hold_period_secs: 3_600.0,
                hold_cap_secs: 12.0 * 3_600.0,
            },
        );
        let down_at = SimTime::from_secs(1_000);
        let pendings: Vec<_> = (0..10).map(|n| (n, policy.node_down(n, down_at))).collect();
        let deadline = down_at + SimTime::from_secs((4 + 12) * 3_600);
        for (node, p) in pendings {
            let mut now = p.declare_at;
            loop {
                match policy.decide(node, p.generation, now) {
                    crate::detection::DeclarationVerdict::Hold { until } => now = until,
                    crate::detection::DeclarationVerdict::Declare => break,
                    crate::detection::DeclarationVerdict::Cancel => {
                        panic!("node {node}: nothing returned")
                    }
                }
            }
            assert!(
                now <= deadline,
                "node {node} declared at {now:?}, after the cap {deadline:?}"
            );
        }
    }

    #[test]
    fn grouped_runs_are_deterministic_and_stack_with_individual_churn() {
        use peerstripe_placement::{DomainSpread, Topology};
        let build = || {
            let ps = loaded(80, 60, 29);
            let manifests = ps.manifests().clone();
            let topology = Topology::uniform_groups(80, 8);
            let churn = ChurnProcess {
                sessions: SessionModel::Synthetic {
                    mean_session_secs: 6.0 * 3_600.0,
                    mean_downtime_secs: 2.0 * 3_600.0,
                },
                permanent_fraction: 0.02,
                grouped: Some(crate::GroupedChurn::new(topology.clone(), 16.0, 6.0)),
            };
            MaintenanceEngine::new(
                ps.into_cluster(),
                &manifests,
                churn,
                config(RepairPolicy::Eager, 12.0 * 3_600.0),
                29,
            )
            .with_placement(Box::new(DomainSpread::new()), None)
        };
        let mut a = build();
        let mut b = build();
        a.run_for(SimTime::from_secs(48 * 3_600));
        b.run_for(SimTime::from_secs(48 * 3_600));
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.events, rb.events);
        assert_eq!(ra.repair_bytes, rb.repair_bytes);
        assert_eq!(ra.group_outages, rb.group_outages);
        assert_eq!(ra.files_lost, rb.files_lost);
        // Both churn processes actually ran.
        assert!(ra.transient_departures > 0);
        assert!(ra.group_departures > 0);
        assert!(
            a.topology().is_some(),
            "grouped topology auto-wires placement"
        );
        assert!(a.accounting_is_consistent());
    }

    #[test]
    fn run_for_composes() {
        let mut a = engine(RepairPolicy::Eager, 0.05, 17);
        let mut b = engine(RepairPolicy::Eager, 0.05, 17);
        a.run_for(SimTime::from_secs(36 * 3_600));
        b.run_for(SimTime::from_secs(12 * 3_600));
        b.run_for(SimTime::from_secs(24 * 3_600));
        assert_eq!(a.report().events, b.report().events);
        assert_eq!(a.report().repair_bytes, b.report().repair_bytes);
    }

    #[test]
    fn sub_minute_probes_respect_the_configured_retry_floor() {
        // Two configurations that differ only in the retry floor must diverge
        // in event count when repairs defer: the floor is a real knob, not a
        // hard-coded constant.  A 5 s probe with the default 60 s floor
        // retries at 60 s; with a 5 s floor it retries at probe cadence.
        let build = |retry_floor_secs: f64| {
            let ps = loaded(30, 40, 31);
            let manifests = ps.manifests().clone();
            let mut cfg = config(RepairPolicy::Eager, 600.0);
            cfg.detector.probe_period_secs = 5.0;
            cfg.detector.retry_floor_secs = retry_floor_secs;
            MaintenanceEngine::new(ps.into_cluster(), &manifests, churn(0.2), cfg, 31)
        };
        let mut floored = build(60.0);
        let mut fast = build(5.0);
        floored.run_for(SimTime::from_secs(24 * 3_600));
        fast.run_for(SimTime::from_secs(24 * 3_600));
        assert_eq!(
            floored.detector_label(),
            fast.detector_label(),
            "same policy either way"
        );
        assert!(
            fast.report().events > floored.report().events,
            "a lower floor must retry more often: {} vs {}",
            fast.report().events,
            floored.report().events
        );
    }
}
