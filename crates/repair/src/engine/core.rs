//! The [`MaintenanceEngine`] itself: state, construction, the run loop,
//! repair triggering, and the summary report.

use super::accounting::WriteOffAccounting;
use super::events::MaintenanceEvent;
use crate::config::{ChurnProcess, RepairConfig};
use crate::detection::DetectionPolicy;
use crate::scheduler::RepairScheduler;
use peerstripe_core::{DamageLedger, MaintenanceMetrics, ManifestStore, StorageCluster};
use peerstripe_overlay::NodeRef;
use peerstripe_placement::{DomainView, OverlayRandom, PlacementStrategy, RepairRequest, Topology};
use peerstripe_sim::dist::{Distribution, Exponential};
use peerstripe_sim::{ByteSize, DetRng, EventQueue, SimTime};
use peerstripe_telemetry::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, NullTracer, Phase, PhaseProfiler,
    TraceEvent, TraceOutput, TraceRecord, Tracer,
};

/// Aggregate outcome of a maintenance run.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Virtual time the engine has reached.
    pub sim_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Files tracked.
    pub files_total: u64,
    /// Files permanently lost.
    pub files_lost: u64,
    /// Files unavailable at the end of the run.
    pub files_unavailable: u64,
    /// Mean sampled availability percentage.
    pub availability_mean_pct: f64,
    /// Lowest sampled availability percentage.
    pub availability_min_pct: f64,
    /// Total repair traffic.
    pub repair_bytes: ByteSize,
    /// Repair traffic spent regenerating blocks of nodes that later returned
    /// — traffic a smarter detector would not have spent.
    pub wasted_repair_bytes: ByteSize,
    /// Individual blocks regenerated.
    pub blocks_regenerated: u64,
    /// User bytes under maintenance.
    pub useful_bytes: ByteSize,
    /// Repair traffic per useful byte protected.
    pub repair_per_useful_byte: f64,
    /// Permanent departures drawn by the churn process.
    pub permanent_failures: u64,
    /// Transient departures drawn by the churn process.
    pub transient_departures: u64,
    /// Whole-group outage events drawn by the grouped churn mode.
    pub group_outages: u64,
    /// Node departures caused by group outages.
    pub group_departures: u64,
    /// Nodes declared dead that later returned.
    pub false_declarations: u64,
    /// Down periods whose declaration the detector held at least once
    /// (outage-aware policy classifying correlated absence).
    pub declarations_held: u64,
    /// Held declarations cancelled by the node returning — each one a
    /// write-off (and its regeneration wave) that never happened.
    pub held_cancelled: u64,
    /// The failure-detection policy's label.
    pub detector: String,
}

impl MaintenanceReport {
    /// Wasted repair traffic as a fraction of all repair traffic (0 when no
    /// repairs ran).
    pub fn wasted_repair_fraction(&self) -> f64 {
        if self.repair_bytes.is_zero() {
            0.0
        } else {
            self.wasted_repair_bytes.as_u64() as f64 / self.repair_bytes.as_u64() as f64
        }
    }
}

/// Handles into the engine's live [`MetricsRegistry`]: registered once at
/// construction, so hot-path updates are array writes.
#[derive(Debug, Clone, Copy)]
pub(super) struct EngineCounters {
    /// `engine_events_total` — every event the dispatcher handles.
    pub(super) events: CounterHandle,
    /// `engine_declaration_verdicts_total{verdict=declare|hold|cancel}`.
    pub(super) verdict_declare: CounterHandle,
    pub(super) verdict_hold: CounterHandle,
    pub(super) verdict_cancel: CounterHandle,
    /// `engine_repair_traffic_bytes` — per completed repair.
    pub(super) repair_traffic: HistogramHandle,
    /// `engine_declaration_wait_secs` — down-period length at declaration.
    pub(super) declaration_wait: HistogramHandle,
    /// `engine_files_unavailable` — refreshed at every sample.
    pub(super) files_unavailable: GaugeHandle,
}

impl EngineCounters {
    fn new(registry: &mut MetricsRegistry) -> Self {
        const HOUR: f64 = 3_600.0;
        EngineCounters {
            events: registry.counter("engine_events_total", &[]),
            verdict_declare: registry.counter(
                "engine_declaration_verdicts_total",
                &[("verdict", "declare")],
            ),
            verdict_hold: registry
                .counter("engine_declaration_verdicts_total", &[("verdict", "hold")]),
            verdict_cancel: registry.counter(
                "engine_declaration_verdicts_total",
                &[("verdict", "cancel")],
            ),
            repair_traffic: registry.histogram(
                "engine_repair_traffic_bytes",
                &[],
                &[1e6, 4e6, 16e6, 64e6, 256e6, 1e9],
            ),
            declaration_wait: registry.histogram(
                "engine_declaration_wait_secs",
                &[],
                &[
                    HOUR,
                    4.0 * HOUR,
                    12.0 * HOUR,
                    24.0 * HOUR,
                    48.0 * HOUR,
                    168.0 * HOUR,
                ],
            ),
            files_unavailable: registry.gauge("engine_files_unavailable", &[]),
        }
    }
}

/// The event-driven churn & repair engine.
pub struct MaintenanceEngine {
    pub(super) cluster: StorageCluster,
    pub(super) ledger: DamageLedger,
    pub(super) queue: EventQueue<MaintenanceEvent>,
    pub(super) detector: Box<dyn DetectionPolicy>,
    pub(super) scheduler: RepairScheduler,
    pub(super) churn: ChurnProcess,
    pub(super) sample_period: SimTime,
    pub(super) rng: DetRng,
    // Per chunk, indexed like the ledger.
    pub(super) alive_blocks: Vec<u32>,
    pub(super) in_flight: Vec<u32>,
    pub(super) target_blocks: Vec<u32>,
    pub(super) block_size: Vec<ByteSize>,
    pub(super) retry_pending: Vec<bool>,
    // Per file.
    pub(super) file_failed_chunks: Vec<u32>,
    pub(super) file_lost_chunks: Vec<u32>,
    pub(super) files_unavailable: u64,
    // Per node.
    pub(super) permanent: Vec<bool>,
    pub(super) declared: Vec<bool>,
    /// True while the node's declaration is being held by the detector.
    pub(super) hold_active: Vec<bool>,
    /// Session generation per node; bumped when a group outage cuts a session
    /// short so the node's stale Depart/Return chain is invalidated.
    pub(super) session_gen: Vec<u64>,
    // Grouped churn (indexed by churn-topology domain).
    pub(super) group_down_until: Vec<SimTime>,
    pub(super) grouped_rng: DetRng,
    // Placement of rebuilt blocks.
    pub(super) placement: Box<dyn PlacementStrategy>,
    pub(super) topology: Option<Topology>,
    pub(super) writeoffs: WriteOffAccounting,
    pub(super) metrics: MaintenanceMetrics,
    pub(super) horizon: SimTime,
    // Telemetry: structured trace sink, live registry, per-phase profiler.
    pub(super) tracer: Box<dyn Tracer>,
    pub(super) registry: MetricsRegistry,
    pub(super) counters: EngineCounters,
    pub(super) profiler: PhaseProfiler,
    /// Per node: the outage id of the group outage that took it down, `None`
    /// for individual departures — links declarations (and the losses they
    /// cause) back to their causal outage in the trace.
    pub(super) down_outage: Vec<Option<u64>>,
    /// Per group: the id of its current (or most recent) outage.
    pub(super) group_outage_id: Vec<u64>,
    pub(super) next_outage_id: u64,
}

impl MaintenanceEngine {
    /// Build the engine over a loaded deployment.
    ///
    /// `cluster` and `manifests` describe the system at time zero (every node
    /// up); `seed` makes the whole run — churn draws, permanence coin flips,
    /// placement probes — reproducible.  The failure-detection policy comes
    /// from `config.detection`; the outage-aware policy correlates over the
    /// grouped-churn topology's [`DomainView`] when one is configured
    /// (override with [`MaintenanceEngine::with_detector`]).
    pub fn new(
        cluster: StorageCluster,
        manifests: &ManifestStore,
        churn: ChurnProcess,
        config: RepairConfig,
        seed: u64,
    ) -> Self {
        let ledger = DamageLedger::build(manifests);
        let nodes = cluster.node_count();
        let chunks = ledger.chunk_count();
        let mut alive_blocks = Vec::with_capacity(chunks);
        let mut target_blocks = Vec::with_capacity(chunks);
        let mut block_size = Vec::with_capacity(chunks);
        for c in 0..chunks as u32 {
            let blocks = ledger.blocks(c);
            alive_blocks.push(blocks.len() as u32);
            target_blocks.push(blocks.len() as u32);
            block_size.push(
                blocks
                    .first()
                    .map(|(_, s)| *s)
                    .unwrap_or_else(|| ByteSize::bytes(1)),
            );
        }
        let mut rng = DetRng::new(seed).fork("maintenance");
        let group_count = churn
            .grouped
            .as_ref()
            .map(|g| g.topology.domain_count())
            .unwrap_or(0);
        // The grouped mode's topology doubles as the default placement
        // topology, so repair re-placement is domain-aware whenever the churn
        // is (override with [`MaintenanceEngine::with_placement`]); its
        // domain view likewise feeds the outage-aware detector.
        let topology = churn.grouped.as_ref().map(|g| g.topology.clone());
        let view = topology
            .as_ref()
            .map(|t| t.domain_view())
            .unwrap_or_else(DomainView::unaffiliated);
        let mut registry = MetricsRegistry::new();
        let counters = EngineCounters::new(&mut registry);
        let mut engine = MaintenanceEngine {
            detector: config.detection.build(nodes, config.detector, view),
            scheduler: RepairScheduler::new(nodes, config.bandwidth, config.policy),
            sample_period: SimTime::from_secs_f64(config.sample_period_secs),
            queue: EventQueue::new(),
            file_failed_chunks: vec![0; ledger.file_count()],
            file_lost_chunks: vec![0; ledger.file_count()],
            files_unavailable: 0,
            in_flight: vec![0; chunks],
            retry_pending: vec![false; chunks],
            permanent: vec![false; nodes],
            declared: vec![false; nodes],
            hold_active: vec![false; nodes],
            session_gen: vec![0; nodes],
            group_down_until: vec![SimTime::ZERO; group_count],
            grouped_rng: DetRng::new(seed).fork("grouped-churn"),
            placement: Box::new(OverlayRandom::new()),
            topology,
            writeoffs: WriteOffAccounting::new(chunks, nodes),
            metrics: MaintenanceMetrics::new(),
            horizon: SimTime::ZERO,
            tracer: Box::new(NullTracer),
            registry,
            counters,
            profiler: PhaseProfiler::new(false),
            down_outage: vec![None; nodes],
            group_outage_id: vec![0; group_count],
            next_outage_id: 0,
            cluster,
            ledger,
            churn,
            alive_blocks,
            target_blocks,
            block_size,
            rng: rng.fork("engine"),
        };
        // Every node starts up, already partway through a session: the first
        // departure lands at a uniformly random *residual* of a sampled
        // session length, so time zero is a steady-state snapshot rather than
        // a synchronised wave of fresh sessions all expiring together.
        for node in 0..nodes {
            let session = engine.churn.sessions.sample_session(&mut rng);
            let residual = session * rng.next_f64();
            engine.queue.schedule_at(
                SimTime::from_secs_f64(residual),
                MaintenanceEvent::Depart { node, session: 0 },
            );
        }
        // Grouped mode: every domain's first outage arrives after an
        // exponential wait on its own stream, so the independent-session draws
        // above are byte-identical with and without grouping.
        if let Some(grouped) = &engine.churn.grouped {
            let rate = 1.0 / grouped.mean_outage_interval_secs;
            for group in 0..group_count as u32 {
                let wait = Exponential::new(rate).sample(&mut engine.grouped_rng);
                engine.queue.schedule_at(
                    SimTime::from_secs_f64(wait),
                    MaintenanceEvent::GroupDepart { group },
                );
            }
        }
        engine
            .queue
            .schedule_at(engine.sample_period, MaintenanceEvent::Sample);
        engine
    }

    /// Route rebuilt-block placement through an explicit strategy (and
    /// optionally a different topology than the churn's).  The default is
    /// [`OverlayRandom`] over the grouped-churn topology, if any.
    pub fn with_placement(
        mut self,
        strategy: Box<dyn PlacementStrategy>,
        topology: Option<Topology>,
    ) -> Self {
        self.placement = strategy;
        if topology.is_some() {
            self.topology = topology;
        }
        self
    }

    /// Replace the failure-detection policy with an explicitly constructed
    /// one — e.g. an [`crate::detection::OutageAware`] over a different
    /// [`DomainView`] than the grouped-churn topology's.  Call before running:
    /// detection state (who is down since when) does not carry over.
    pub fn with_detector(mut self, detector: Box<dyn DetectionPolicy>) -> Self {
        assert_eq!(
            self.queue.processed(),
            0,
            "detector must be swapped before the run starts"
        );
        self.detector = detector;
        self
    }

    /// Route trace records into an explicit [`Tracer`] backend.  The default
    /// is [`NullTracer`]; tracing never changes simulation results, only what
    /// is observed about them.
    pub fn with_tracer(mut self, tracer: Box<dyn Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Enable (or disable) per-phase wall-clock profiling.  Wall time never
    /// feeds simulation state; a disabled profiler costs one branch per scope.
    pub fn with_profiling(mut self, enabled: bool) -> Self {
        self.profiler = PhaseProfiler::new(enabled);
        self
    }

    /// Take the accumulated trace, swapping a [`NullTracer`] back in.
    pub fn finish_trace(&mut self) -> TraceOutput {
        std::mem::replace(&mut self.tracer, Box::new(NullTracer)).finish()
    }

    /// Whether trace records are being collected — emission sites check this
    /// before constructing a record, so the null backend pays nothing.
    #[inline]
    pub(super) fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Stamp and emit one trace record at sim time `now`.
    pub(super) fn trace(&mut self, now: SimTime, record: TraceRecord) {
        self.tracer.record(TraceEvent {
            t_ns: now.as_nanos(),
            record,
        });
    }

    /// Advance the simulation by `duration` of virtual time.
    pub fn run_for(&mut self, duration: SimTime) {
        self.horizon += duration;
        let deadline = self.horizon;
        let mut queue = std::mem::take(&mut self.queue);
        queue.run_until(deadline, |q, now, event| {
            let token = self.profiler.begin();
            self.handle(q, now, event);
            self.profiler.end(Phase::EventDispatch, token);
        });
        self.queue = queue;
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &MaintenanceMetrics {
        &self.metrics
    }

    /// The live hot-path metrics registry (event/verdict counters, repair
    /// traffic and declaration-wait histograms).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The per-phase wall-clock profiler.
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.profiler
    }

    /// One registry combining the live hot-path metrics, the aggregate
    /// [`MaintenanceMetrics`] counters, and (when profiling is on) the
    /// per-phase timing gauges.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut registry = self.registry.clone();
        self.metrics.fill_registry(&mut registry, &[]);
        if self.profiler.is_enabled() {
            self.profiler.fill_registry(&mut registry);
        }
        registry
    }

    /// The block ledger (current placements and losses).
    pub fn ledger(&self) -> &DamageLedger {
        &self.ledger
    }

    /// The cluster under maintenance.
    pub fn cluster(&self) -> &StorageCluster {
        &self.cluster
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Files currently unavailable.
    pub fn files_unavailable(&self) -> u64 {
        self.files_unavailable
    }

    /// The failure-detection policy's label.
    pub fn detector_label(&self) -> String {
        self.detector.label()
    }

    /// Summarise the run.
    pub fn report(&self) -> MaintenanceReport {
        let useful = self.ledger.tracked_bytes();
        MaintenanceReport {
            sim_time: self.queue.now(),
            events: self.queue.processed(),
            files_total: self.ledger.file_count() as u64,
            files_lost: self.metrics.files_lost,
            files_unavailable: self.files_unavailable,
            availability_mean_pct: self.metrics.mean_availability_pct(),
            availability_min_pct: self.metrics.min_availability_pct(),
            repair_bytes: self.metrics.repair_bytes,
            wasted_repair_bytes: self.metrics.wasted_repair_bytes,
            blocks_regenerated: self.metrics.blocks_regenerated,
            useful_bytes: useful,
            repair_per_useful_byte: self.metrics.repair_bytes_per_useful_byte(useful),
            permanent_failures: self.metrics.permanent_failures,
            transient_departures: self.metrics.transient_departures,
            group_outages: self.metrics.group_outages,
            group_departures: self.metrics.group_departures,
            false_declarations: self.metrics.false_declarations,
            declarations_held: self.metrics.declarations_held,
            held_cancelled: self.metrics.held_cancelled,
            detector: self.detector.label(),
        }
    }

    /// True if the grouped-churn domain is currently in an outage.
    pub fn group_outage_active(&self, group: u32) -> bool {
        self.group_down_until
            .get(group as usize)
            .is_some_and(|&until| self.queue.now() < until)
    }

    /// The topology rebuilt blocks are placed against, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Decide whether (and how much) to regenerate for `chunk`, and charge the
    /// transfers.  Defers silently when decode sources or placement targets are
    /// not currently available — the next return/declaration/completion event
    /// touching the chunk retries.
    pub(super) fn maybe_repair(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        chunk: u32,
    ) {
        let ci = chunk as usize;
        if self.ledger.is_lost(chunk) {
            return;
        }
        let needed = self.ledger.needed(chunk);
        let placed = self.ledger.blocks(chunk).len();
        let want = self.scheduler.policy().blocks_wanted(
            placed,
            self.in_flight[ci] as usize,
            needed,
            self.target_blocks[ci] as usize,
        );
        if want == 0 {
            return;
        }
        // Decode sources: `needed` distinct live holders of the chunk's blocks.
        let mut sources: Vec<NodeRef> = Vec::with_capacity(needed);
        for (node, _) in self.ledger.blocks(chunk) {
            if self.cluster.overlay().is_alive(*node) && !sources.contains(node) {
                sources.push(*node);
                if sources.len() == needed {
                    break;
                }
            }
        }
        if sources.len() < needed {
            // Not decodable right now: retry at the next probe boundary (a
            // holder returning earlier also retries).
            self.schedule_retry(q, chunk);
            return;
        }
        // Placement targets through the placement strategy: a rebuilt block
        // never collocates with a registered block of its chunk, and with a
        // topology in play, domains already at the chunk's block cap are
        // excluded (so repair re-placement preserves the original spread).
        let size = self.block_size[ci];
        let holders: Vec<NodeRef> = self.ledger.blocks(chunk).iter().map(|(n, _)| *n).collect();
        let domain_cap = if self.topology.is_some() {
            (self.target_blocks[ci] as usize)
                .saturating_sub(needed)
                .max(1)
        } else {
            usize::MAX
        };
        let request = RepairRequest {
            want,
            size,
            holders: &holders,
            domain_cap,
        };
        let token = self.profiler.begin();
        let targets = self.placement.repair_targets(
            &self.cluster,
            self.topology.as_ref(),
            &request,
            &mut self.rng,
        );
        self.profiler.end(Phase::Placement, token);
        if self.tracing() {
            let strategy = self.placement.name().to_string();
            self.trace(
                now,
                TraceRecord::PlacementDecision {
                    chunk,
                    strategy,
                    want,
                    got: targets.len(),
                },
            );
        }
        if targets.is_empty() {
            self.schedule_retry(q, chunk);
            return;
        }
        let token = self.profiler.begin();
        let plan = self
            .scheduler
            .schedule(chunk, size, &sources, &targets, now);
        self.profiler.end(Phase::Scheduler, token);
        self.in_flight[ci] += plan.placements.len() as u32;
        if self.tracing() {
            self.trace(
                now,
                TraceRecord::RepairScheduled {
                    chunk,
                    blocks: plan.placements.len(),
                    traffic: plan.traffic.as_u64(),
                    done_at_ns: plan.done_at.as_nanos(),
                },
            );
        }
        q.schedule_at(
            plan.done_at,
            MaintenanceEvent::RepairDone {
                chunk,
                placements: plan.placements,
                traffic: plan.traffic,
            },
        );
    }

    /// Queue a deferred-repair retry for `chunk` one retry period out (at most
    /// one pending retry per chunk, so deferrals cannot flood the queue).  The
    /// period is the probe period floored by the configured
    /// [`crate::DetectorConfig::retry_floor_secs`].
    pub(super) fn schedule_retry(&mut self, q: &mut EventQueue<MaintenanceEvent>, chunk: u32) {
        let ci = chunk as usize;
        if self.retry_pending[ci] {
            return;
        }
        self.retry_pending[ci] = true;
        let period = SimTime::from_secs_f64(self.detector.config().retry_period_secs());
        q.schedule_after(period, MaintenanceEvent::RetryRepair(chunk));
    }
}
