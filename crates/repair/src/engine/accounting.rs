//! Incremental availability/durability accounting and the wasted-repair
//! attribution ledger.
//!
//! Availability is tracked per event in O(blocks touched): every chunk keeps
//! a live-block counter, every file a failed-chunk counter, and the engine a
//! single unavailable-file total.  [`MaintenanceEngine::accounting_is_consistent`]
//! recomputes everything from scratch and is the oracle the property tests
//! compare against.
//!
//! [`WriteOffAccounting`] answers the question the outage-aware detector
//! exists for: *how much repair traffic did we spend regenerating blocks of
//! nodes that were never actually gone?*  Every block a declaration writes
//! off is queued against its chunk with the declared owner; every regenerated
//! block pops one queued write-off and attributes its share of the repair's
//! traffic to that owner.  If the owner later returns (a false declaration),
//! the attributed bytes — plus any share attributed after the return, since
//! the written-off blocks stay lost either way — are flushed into
//! `wasted_repair_bytes`.  Traffic attributed to owners that never return is
//! genuine repair work and is never counted wasted.

use super::core::MaintenanceEngine;
use peerstripe_overlay::NodeRef;
use peerstripe_sim::{ByteSize, SimTime};
use peerstripe_telemetry::TraceRecord;
use std::collections::VecDeque;

/// Attribution of regenerated blocks to the declarations that caused them.
#[derive(Debug, Clone)]
pub(super) struct WriteOffAccounting {
    /// Per chunk: the declared owners of its written-off blocks, oldest first
    /// (one entry per block the declaration deregistered).
    pending: Vec<VecDeque<NodeRef>>,
    /// Per node: repair bytes attributed to its written-off blocks while the
    /// node is still declared-away.  Flushed to "wasted" on a false return;
    /// dropped (genuine repair work) if the node never returns.
    attributed: Vec<ByteSize>,
    /// Per node: true once the node's last declaration was falsified by a
    /// return — later regenerations of its written-off blocks count as wasted
    /// immediately.
    falsified: Vec<bool>,
}

impl WriteOffAccounting {
    pub(super) fn new(chunks: usize, nodes: usize) -> Self {
        WriteOffAccounting {
            pending: vec![VecDeque::new(); chunks],
            attributed: vec![ByteSize::ZERO; nodes],
            falsified: vec![false; nodes],
        }
    }

    /// A declaration deregistered one of `owner`'s blocks on `chunk`.
    pub(super) fn block_written_off(&mut self, chunk: u32, owner: NodeRef) {
        self.pending[chunk as usize].push_back(owner);
        // A fresh declaration starts a fresh attribution cycle.
        self.falsified[owner] = false;
    }

    /// `chunk` was written off entirely: no repair will ever regenerate its
    /// blocks, so its queued write-offs can never be attributed.
    pub(super) fn chunk_lost(&mut self, chunk: u32) {
        self.pending[chunk as usize].clear();
    }

    /// One block of `chunk` was regenerated at a traffic cost of `share`.
    /// Returns the bytes that are *already known* to be wasted (the causing
    /// declaration was falsified before this repair landed).
    pub(super) fn block_regenerated(
        &mut self,
        chunk: u32,
        share: ByteSize,
        declared: &[bool],
    ) -> ByteSize {
        let Some(owner) = self.pending[chunk as usize].pop_front() else {
            // A top-up beyond the queued write-offs (e.g. re-running after a
            // dropped placement already consumed the entry): unattributable.
            return ByteSize::ZERO;
        };
        if declared[owner] {
            // Owner still away: park the bytes until we learn whether the
            // declaration was right.
            self.attributed[owner] += share;
            ByteSize::ZERO
        } else if self.falsified[owner] {
            // Owner already came back: this regeneration exists only because
            // of a declaration we know was false.
            share
        } else {
            ByteSize::ZERO
        }
    }

    /// `node` returned after being declared dead: every byte attributed so
    /// far was wasted, and future attributions to this declaration will be
    /// too.  Returns the bytes to flush into the wasted counter.
    pub(super) fn settle_false_return(&mut self, node: NodeRef) -> ByteSize {
        self.falsified[node] = true;
        std::mem::take(&mut self.attributed[node])
    }
}

impl MaintenanceEngine {
    /// Verify the engine's incremental availability accounting against a full
    /// recomputation from the ledger and the overlay: per-chunk live-block
    /// counters, per-file failed-chunk counters, and the unavailable-file
    /// total must all balance.  O(blocks); used by the grouped-churn
    /// conservation property tests.
    pub fn accounting_is_consistent(&self) -> bool {
        let mut failed_chunks = vec![0u32; self.ledger.file_count()];
        for chunk in 0..self.ledger.chunk_count() as u32 {
            let ci = chunk as usize;
            let fi = self.ledger.file_of(chunk) as usize;
            if self.ledger.is_lost(chunk) {
                // Lost chunks freeze their availability accounting; they stay
                // failed forever.
                failed_chunks[fi] += 1;
                continue;
            }
            let alive = self
                .ledger
                .blocks(chunk)
                .iter()
                .filter(|(n, _)| self.cluster.overlay().is_alive(*n))
                .count() as u32;
            if alive != self.alive_blocks[ci] {
                return false;
            }
            if alive < self.ledger.needed(chunk) as u32 {
                failed_chunks[fi] += 1;
            }
        }
        let unavailable = failed_chunks.iter().filter(|&&c| c > 0).count() as u64;
        failed_chunks
            .iter()
            .zip(&self.file_failed_chunks)
            .all(|(recomputed, tracked)| recomputed == tracked)
            && unavailable == self.files_unavailable
    }

    /// A block of `chunk` went offline (its holder departed).
    pub(super) fn chunk_block_down(&mut self, chunk: u32) {
        let ci = chunk as usize;
        if self.ledger.is_lost(chunk) {
            return;
        }
        let needed = self.ledger.needed(chunk) as u32;
        let was_ok = self.alive_blocks[ci] >= needed;
        self.alive_blocks[ci] = self.alive_blocks[ci].saturating_sub(1);
        if was_ok && self.alive_blocks[ci] < needed {
            let fi = self.ledger.file_of(chunk) as usize;
            self.file_failed_chunks[fi] += 1;
            if self.file_failed_chunks[fi] == 1 {
                self.files_unavailable += 1;
            }
        }
    }

    /// A block of `chunk` came (back) online.
    pub(super) fn chunk_block_up(&mut self, chunk: u32) {
        let ci = chunk as usize;
        if self.ledger.is_lost(chunk) {
            return;
        }
        let needed = self.ledger.needed(chunk) as u32;
        let was_ok = self.alive_blocks[ci] >= needed;
        self.alive_blocks[ci] += 1;
        if !was_ok && self.alive_blocks[ci] >= needed {
            let fi = self.ledger.file_of(chunk) as usize;
            self.file_failed_chunks[fi] = self.file_failed_chunks[fi].saturating_sub(1);
            if self.file_failed_chunks[fi] == 0 {
                self.files_unavailable = self.files_unavailable.saturating_sub(1);
            }
        }
    }

    /// `chunk` fell below its decode threshold with its lost blocks written
    /// off: the data is gone for good.  `cause` is the declared node whose
    /// write-off pushed the chunk under — every chunk loss is caused by a
    /// declaration (this is only called from the declare path), which is what
    /// lets `repro trace-summary` attribute each lost file to a concrete
    /// declaration and, transitively, to the outage that provoked it.
    pub(super) fn write_off(&mut self, now: SimTime, chunk: u32, cause: NodeRef) {
        if self.ledger.is_lost(chunk) {
            return;
        }
        self.ledger.mark_lost(chunk);
        self.writeoffs.chunk_lost(chunk);
        let fi = self.ledger.file_of(chunk) as usize;
        self.file_lost_chunks[fi] += 1;
        let file_newly_lost = self.file_lost_chunks[fi] == 1;
        self.metrics
            .record_loss(self.ledger.chunk_size(chunk), file_newly_lost);
        if self.tracing() {
            let file = self.ledger.file_of(chunk);
            let outage = self.down_outage.get(cause).copied().flatten();
            self.trace(
                now,
                TraceRecord::ChunkLost {
                    chunk,
                    file,
                    cause_node: cause,
                    outage,
                },
            );
            if file_newly_lost {
                self.trace(
                    now,
                    TraceRecord::FileLost {
                        file,
                        chunk,
                        cause_node: cause,
                        outage,
                    },
                );
            }
        }
        // A lost chunk is unavailable forever; freeze it into the availability
        // accounting (it was already below threshold — losing placed blocks
        // implies losing live ones — so nothing to transition here).
    }
}
