//! The maintenance event alphabet and its handlers: departures, returns,
//! whole-domain outages, declaration verdicts (including held-declaration
//! release and cancellation), repair completions and periodic samples.

use super::core::MaintenanceEngine;
use crate::detection::DeclarationVerdict;
use peerstripe_overlay::NodeRef;
use peerstripe_sim::dist::{Distribution, Exponential};
use peerstripe_sim::{ByteSize, EventQueue, SimTime};
use peerstripe_telemetry::{Phase, TraceRecord};

/// Events the maintenance engine processes.
#[derive(Debug, Clone)]
pub enum MaintenanceEvent {
    /// A node leaves the overlay (transient or permanent; nobody knows yet).
    Depart {
        /// The departing node.
        node: NodeRef,
        /// The session generation the event belongs to.  A group outage that
        /// cuts a node's session short bumps the generation, so the stale
        /// per-node event chain dies instead of double-driving the node.
        session: u64,
    },
    /// A transiently departed node returns.
    Return {
        /// The returning node.
        node: NodeRef,
        /// The session generation the event belongs to.
        session: u64,
    },
    /// A whole failure domain goes down at once (grouped churn mode).
    GroupDepart {
        /// The affected topology domain.
        group: u32,
    },
    /// A group outage ends: exactly the members it took down return.
    GroupReturn {
        /// The affected topology domain.
        group: u32,
        /// The members the outage took down (nodes already down individually
        /// at outage start are *not* included — their own return drives them).
        members: Vec<NodeRef>,
    },
    /// A scheduled declaration comes due for a node: the detection policy
    /// decides whether to declare, cancel (stale generation — the node
    /// returned), or hold and re-schedule this same event (outage-aware
    /// policy riding out a correlated absence).
    DeclareDead {
        /// The absent node.
        node: NodeRef,
        /// The down generation the declaration belongs to (stale ones are
        /// ignored — the node returned in the meantime).
        generation: u64,
    },
    /// A scheduled regeneration finishes its transfers.
    RepairDone {
        /// The repaired chunk.
        chunk: u32,
        /// Where the rebuilt blocks land.
        placements: Vec<(NodeRef, ByteSize)>,
        /// Network bytes the repair moved.
        traffic: ByteSize,
    },
    /// Re-attempt a repair that was deferred (not enough live decode sources
    /// or placement targets at the time).
    RetryRepair(u32),
    /// Periodic availability/durability sample.
    Sample,
}

impl MaintenanceEngine {
    pub(super) fn handle(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        event: MaintenanceEvent,
    ) {
        self.registry.inc(self.counters.events, 1);
        match event {
            MaintenanceEvent::Depart { node, session } => {
                if session == self.session_gen[node] {
                    self.on_depart(q, now, node);
                }
            }
            MaintenanceEvent::Return { node, session } => {
                if session == self.session_gen[node] {
                    self.on_return(q, now, node);
                }
            }
            MaintenanceEvent::GroupDepart { group } => self.on_group_depart(q, now, group),
            MaintenanceEvent::GroupReturn { group, members } => {
                self.on_group_return(q, now, group, members)
            }
            MaintenanceEvent::DeclareDead { node, generation } => {
                self.on_declare(q, now, node, generation)
            }
            MaintenanceEvent::RepairDone {
                chunk,
                placements,
                traffic,
            } => self.on_repair_done(q, now, chunk, placements, traffic),
            MaintenanceEvent::RetryRepair(chunk) => {
                self.retry_pending[chunk as usize] = false;
                self.maybe_repair(q, now, chunk);
            }
            MaintenanceEvent::Sample => self.on_sample(q, now),
        }
    }

    fn on_depart(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, node: NodeRef) {
        if !self.cluster.overlay().is_alive(node) {
            return;
        }
        self.cluster.fail_node(node);
        if self.rng.next_f64() < self.churn.permanent_fraction {
            // The disk is gone; the node never returns.
            self.permanent[node] = true;
            self.metrics.permanent_failures += 1;
        } else {
            self.metrics.transient_departures += 1;
            let downtime = self.churn.sessions.sample_downtime(&mut self.rng);
            q.schedule_after(
                SimTime::from_secs_f64(downtime),
                MaintenanceEvent::Return {
                    node,
                    session: self.session_gen[node],
                },
            );
        }
        for chunk in self.ledger.chunks_on(node).to_vec() {
            self.chunk_block_down(chunk);
        }
        self.down_outage[node] = None;
        if self.tracing() {
            let domain = self.topology.as_ref().and_then(|t| t.domain_of(node));
            let permanent = self.permanent[node];
            self.trace(
                now,
                TraceRecord::NodeDown {
                    node,
                    domain,
                    outage: None,
                    permanent,
                },
            );
        }
        let pending = self.detector.node_down(node, now);
        q.schedule_at(
            pending.declare_at,
            MaintenanceEvent::DeclareDead {
                node,
                generation: pending.generation,
            },
        );
    }

    /// A whole failure domain goes down at once: every live member departs,
    /// with its individual session chain invalidated (the outage cut it
    /// short).  Members already down individually are untouched — their own
    /// return event still drives them, deferred past the outage end.
    fn on_group_depart(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, group: u32) {
        let Some(grouped) = self.churn.grouped.as_ref() else {
            return;
        };
        let members = grouped.topology.members(group).to_vec();
        let downtime_rate = 1.0 / grouped.mean_outage_downtime_secs;
        let outage = self.next_outage_id;
        self.next_outage_id += 1;
        self.group_outage_id[group as usize] = outage;
        let mut taken = Vec::new();
        for node in members {
            if !self.cluster.overlay().is_alive(node) {
                continue;
            }
            self.session_gen[node] += 1;
            self.cluster.fail_node(node);
            self.down_outage[node] = Some(outage);
            self.metrics.group_departures += 1;
            for chunk in self.ledger.chunks_on(node).to_vec() {
                self.chunk_block_down(chunk);
            }
            // The detection policy decides what the correlated absence means:
            // the per-node timeout starts counting exactly as for any other
            // departure, while the outage-aware policy will notice at
            // declaration time that the whole domain vanished together.
            let pending = self.detector.node_down(node, now);
            q.schedule_at(
                pending.declare_at,
                MaintenanceEvent::DeclareDead {
                    node,
                    generation: pending.generation,
                },
            );
            taken.push(node);
        }
        self.metrics.group_outages += 1;
        if self.tracing() {
            self.trace(
                now,
                TraceRecord::OutageStart {
                    outage,
                    group,
                    members: taken.len(),
                },
            );
            for &node in &taken {
                self.trace(
                    now,
                    TraceRecord::NodeDown {
                        node,
                        domain: Some(group),
                        outage: Some(outage),
                        permanent: false,
                    },
                );
            }
        }
        let downtime = Exponential::new(downtime_rate).sample(&mut self.grouped_rng);
        let until = now + SimTime::from_secs_f64(downtime);
        self.group_down_until[group as usize] = until;
        q.schedule_at(
            until,
            MaintenanceEvent::GroupReturn {
                group,
                members: taken,
            },
        );
    }

    /// A group outage ends: exactly the members it took down return (dead
    /// disks and overlapping individual downtimes excepted), and the domain's
    /// next outage is drawn.
    fn on_group_return(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        group: u32,
        members: Vec<NodeRef>,
    ) {
        self.group_down_until[group as usize] = now;
        if self.tracing() {
            let outage = self
                .group_outage_id
                .get(group as usize)
                .copied()
                .unwrap_or(0);
            self.trace(now, TraceRecord::OutageEnd { outage, group });
        }
        for node in members {
            self.return_node(q, now, node);
        }
        if let Some(grouped) = self.churn.grouped.as_ref() {
            let rate = 1.0 / grouped.mean_outage_interval_secs;
            let wait = Exponential::new(rate).sample(&mut self.grouped_rng);
            q.schedule_after(
                SimTime::from_secs_f64(wait),
                MaintenanceEvent::GroupDepart { group },
            );
        }
    }

    fn on_return(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, node: NodeRef) {
        // A member of a domain in outage cannot come back up on its own — the
        // power is out; its individual return is deferred past the outage.
        if let Some(grouped) = self.churn.grouped.as_ref() {
            if let Some(domain) = grouped.topology.domain_of(node) {
                let until = self.group_down_until[domain as usize];
                if now < until {
                    q.schedule_at(
                        until + SimTime::from_secs(1),
                        MaintenanceEvent::Return {
                            node,
                            session: self.session_gen[node],
                        },
                    );
                    return;
                }
            }
        }
        self.return_node(q, now, node);
    }

    /// A down node comes back up: rejoin, reconcile with the failure
    /// detector, and start its next session.
    fn return_node(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, node: NodeRef) {
        if self.permanent[node] || self.cluster.overlay().is_alive(node) {
            return;
        }
        self.cluster.overlay_mut().rejoin(node);
        self.detector.node_up(node, now);
        if self.tracing() {
            let false_declaration = self.declared[node];
            self.trace(
                now,
                TraceRecord::NodeReturn {
                    node,
                    false_declaration,
                },
            );
            if self.hold_active[node] {
                self.trace(
                    now,
                    TraceRecord::HoldReleased {
                        node,
                        declared: false,
                    },
                );
            }
        }
        self.down_outage[node] = None;
        if self.hold_active[node] {
            // A held declaration resolves by cancellation: the domain (or at
            // least this node) came back before the hold cap, the generation
            // bump above killed the pending DeclareDead, and no blocks were
            // ever written off — the regeneration wave never started.
            self.hold_active[node] = false;
            self.metrics.held_cancelled += 1;
        }
        if self.declared[node] {
            // Falsely written off: the node is back, but its blocks were
            // already deregistered (and possibly re-created elsewhere), so it
            // rejoins as an empty contributor — including its capacity
            // accounting, or the orphaned objects would pin space forever and
            // starve placement on exactly the nodes that churn the most.
            self.cluster.node_mut(node).wipe();
            self.declared[node] = false;
            self.metrics.false_declarations += 1;
            // Every repair byte attributed to this node's written-off blocks
            // is now known to have been wasted — and repairs for the still
            // missing ones will be too.
            let wasted = self.writeoffs.settle_false_return(node);
            self.metrics.wasted_repair_bytes += wasted;
        } else {
            let chunks = self.ledger.chunks_on(node).to_vec();
            for &chunk in &chunks {
                self.chunk_block_up(chunk);
            }
            // Redundancy (and decode sources) came back: deferred repairs of
            // the chunks this node participates in may be able to run now.
            let mut seen = std::collections::BTreeSet::new();
            for chunk in chunks {
                if seen.insert(chunk) {
                    self.maybe_repair(q, now, chunk);
                }
            }
        }
        let session = self.churn.sessions.sample_session(&mut self.rng);
        q.schedule_after(
            SimTime::from_secs_f64(session),
            MaintenanceEvent::Depart {
                node,
                session: self.session_gen[node],
            },
        );
    }

    /// A declaration comes due: ask the detection policy for its verdict.
    /// `Cancel` drops a stale event, `Hold` re-schedules this declaration for
    /// a later re-decision (and counts the down period as held once), and
    /// `Declare` writes the node's blocks off and triggers regeneration.
    fn on_declare(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        node: NodeRef,
        generation: u64,
    ) {
        let token = self.profiler.begin();
        let verdict = self.detector.decide(node, generation, now);
        self.profiler.end(Phase::DetectorDecide, token);
        match verdict {
            DeclarationVerdict::Cancel => {
                self.registry.inc(self.counters.verdict_cancel, 1);
                if self.tracing() {
                    let outage = self.down_outage[node];
                    self.trace(
                        now,
                        TraceRecord::DeclarationVerdict {
                            node,
                            generation,
                            verdict: "cancel".to_string(),
                            outage,
                        },
                    );
                }
                return;
            }
            DeclarationVerdict::Hold { until } => {
                debug_assert!(until > now, "holds must move forward");
                self.registry.inc(self.counters.verdict_hold, 1);
                if self.tracing() {
                    let outage = self.down_outage[node];
                    self.trace(
                        now,
                        TraceRecord::DeclarationVerdict {
                            node,
                            generation,
                            verdict: "hold".to_string(),
                            outage,
                        },
                    );
                }
                if !self.hold_active[node] {
                    self.hold_active[node] = true;
                    self.metrics.declarations_held += 1;
                }
                q.schedule_at(until, MaintenanceEvent::DeclareDead { node, generation });
                return;
            }
            DeclarationVerdict::Declare => {}
        }
        self.registry.inc(self.counters.verdict_declare, 1);
        if let Some(since) = self.detector.down_since(node) {
            let wait = now.saturating_sub(since).as_secs_f64();
            self.registry.observe(self.counters.declaration_wait, wait);
        }
        if self.tracing() {
            let outage = self.down_outage[node];
            self.trace(
                now,
                TraceRecord::DeclarationVerdict {
                    node,
                    generation,
                    verdict: "declare".to_string(),
                    outage,
                },
            );
            if self.hold_active[node] {
                self.trace(
                    now,
                    TraceRecord::HoldReleased {
                        node,
                        declared: true,
                    },
                );
            }
        }
        // A held declaration released past its cap (or an absence that
        // stopped looking correlated) is a declaration like any other.
        self.hold_active[node] = false;
        self.declared[node] = true;
        for loss in self.ledger.remove_node(node) {
            for _ in 0..loss.lost.len() {
                self.writeoffs.block_written_off(loss.chunk, node);
            }
            if self.tracing() {
                self.trace(
                    now,
                    TraceRecord::BlocksWrittenOff {
                        chunk: loss.chunk,
                        node,
                        blocks: loss.lost.len(),
                    },
                );
            }
            if loss.survivors < self.ledger.needed(loss.chunk) {
                self.write_off(now, loss.chunk, node);
            } else {
                self.maybe_repair(q, now, loss.chunk);
            }
        }
    }

    fn on_repair_done(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        chunk: u32,
        placements: Vec<(NodeRef, ByteSize)>,
        traffic: ByteSize,
    ) {
        let blocks = placements.len() as u64;
        self.scheduler.complete(blocks);
        let ci = chunk as usize;
        self.in_flight[ci] = self.in_flight[ci].saturating_sub(blocks as u32);
        // Each rebuilt block carries an equal share of the repair's traffic
        // for the wasted-repair attribution.
        let share = ByteSize::bytes(traffic.as_u64() / blocks.max(1));
        let mut placed = 0u64;
        let mut dropped = 0u64;
        if !self.ledger.is_lost(chunk) {
            for (node, size) in placements {
                // The target must still be alive and still have the space it
                // had at scheduling time; the reservation charges its capacity
                // so future can_store probes see regenerated blocks.
                if self.cluster.overlay().is_alive(node)
                    && self.cluster.node_mut(node).reserve(size).is_ok()
                {
                    self.ledger.place_block(chunk, node, size);
                    self.chunk_block_up(chunk);
                    placed += 1;
                    let wasted = self
                        .writeoffs
                        .block_regenerated(chunk, share, &self.declared);
                    self.metrics.wasted_repair_bytes += wasted;
                } else {
                    self.metrics.repairs_dropped += 1;
                    dropped += 1;
                }
            }
        } else {
            self.metrics.repairs_dropped += blocks;
            dropped = blocks;
        }
        // The transfers happened whether or not every placement stuck.
        self.metrics.record_repair(traffic, placed);
        self.registry
            .observe(self.counters.repair_traffic, traffic.as_u64() as f64);
        if self.tracing() {
            self.trace(
                now,
                TraceRecord::RepairCompleted {
                    chunk,
                    placed,
                    dropped,
                    traffic: traffic.as_u64(),
                },
            );
        }
        if !self.ledger.is_lost(chunk) {
            self.maybe_repair(q, now, chunk);
        }
    }

    fn on_sample(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime) {
        self.metrics.record_sample(
            peerstripe_core::MaintenanceSample {
                at: now,
                files_unavailable: self.files_unavailable,
                files_lost: self.metrics.files_lost,
                repair_bytes: self.metrics.repair_bytes,
                repairs_in_flight: self.scheduler.in_flight(),
            },
            self.ledger.file_count() as u64,
        );
        self.registry.set(
            self.counters.files_unavailable,
            self.files_unavailable as f64,
        );
        if self.tracing() {
            self.trace(
                now,
                TraceRecord::Sample {
                    files_unavailable: self.files_unavailable,
                    files_lost: self.metrics.files_lost,
                    repair_bytes: self.metrics.repair_bytes.as_u64(),
                    repairs_in_flight: self.scheduler.in_flight(),
                },
            );
        }
        q.schedule_after(self.sample_period, MaintenanceEvent::Sample);
    }
}
