//! Synthetic large-file traces.
//!
//! The paper drives its simulations with a file-system trace collected from
//! video-hosting sites, Linux mirrors, and departmental servers, filtered to
//! files of at least 50 MB: about 1.2 million files with a mean size of 243 MB
//! and a standard deviation of 55 MB, 278.7 TB in total (Section 6.1).  Since
//! only those aggregate statistics are published, we synthesise traces from a
//! truncated normal with the same parameters; the generator is deterministic in
//! its seed and its statistics are validated by tests against the published
//! numbers.

use peerstripe_sim::dist::{Distribution, TruncatedNormal};
use peerstripe_sim::{ByteSize, DetRng, OnlineStats};
use serde::{Deserialize, Serialize};

/// One file in a workload trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRecord {
    /// Unique file name (the paper assumes globally unique names).
    pub name: String,
    /// File size.
    pub size: ByteSize,
}

impl FileRecord {
    /// Create a record.
    pub fn new(name: impl Into<String>, size: ByteSize) -> Self {
        FileRecord {
            name: name.into(),
            size,
        }
    }
}

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of files to generate.
    pub file_count: usize,
    /// Mean file size.
    pub mean_size: ByteSize,
    /// Standard deviation of the file size.
    pub std_dev: ByteSize,
    /// Minimum file size (the paper filters files below 50 MB).
    pub min_size: ByteSize,
    /// Maximum file size (truncates the normal's tail; keeps single files from
    /// dwarfing the system).
    pub max_size: ByteSize,
    /// Prefix for generated file names.
    pub name_prefix: String,
}

impl TraceConfig {
    /// The paper's trace parameters at full scale: 1.2 M files, mean 243 MB,
    /// σ 55 MB, minimum 50 MB.
    pub fn paper() -> Self {
        TraceConfig {
            file_count: 1_200_000,
            mean_size: ByteSize::mb(243),
            std_dev: ByteSize::mb(55),
            min_size: ByteSize::mb(50),
            max_size: ByteSize::gb(2),
            name_prefix: "trace".to_string(),
        }
    }

    /// The paper's distribution but a smaller population, for quick experiments
    /// and tests: statistics (mean/σ/min) are preserved, only the count shrinks.
    pub fn scaled(file_count: usize) -> Self {
        TraceConfig {
            file_count,
            ..TraceConfig::paper()
        }
    }

    /// Generate the trace deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = DetRng::new(seed).fork("file-trace");
        let dist = TruncatedNormal::new(
            self.mean_size.as_u64() as f64,
            self.std_dev.as_u64() as f64,
            self.min_size.as_u64() as f64,
            self.max_size.as_u64() as f64,
        );
        let mut files = Vec::with_capacity(self.file_count);
        for i in 0..self.file_count {
            let size = ByteSize::bytes(dist.sample(&mut rng).round() as u64);
            files.push(FileRecord::new(
                format!("{}-{i:07}", self.name_prefix),
                size,
            ));
        }
        Trace { files }
    }
}

/// A workload trace: an ordered list of files to insert into the storage system.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The files, in insertion order.
    pub files: Vec<FileRecord>,
}

/// Aggregate statistics of a trace, for comparison with the paper's numbers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of files.
    pub count: usize,
    /// Total bytes across all files.
    pub total: ByteSize,
    /// Mean file size.
    pub mean: ByteSize,
    /// Standard deviation of file size.
    pub std_dev: ByteSize,
    /// Smallest file.
    pub min: ByteSize,
    /// Largest file.
    pub max: ByteSize,
}

impl Trace {
    /// Create a trace from explicit records.
    pub fn from_files(files: Vec<FileRecord>) -> Self {
        Trace { files }
    }

    /// Number of files in the trace.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total size of all files.
    pub fn total_size(&self) -> ByteSize {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let mut acc = OnlineStats::new();
        for f in &self.files {
            acc.push(f.size.as_u64() as f64);
        }
        TraceStats {
            count: self.files.len(),
            total: self.total_size(),
            mean: ByteSize::bytes(acc.mean().round() as u64),
            std_dev: ByteSize::bytes(acc.std_dev().round() as u64),
            min: ByteSize::bytes(acc.min().unwrap_or(0.0) as u64),
            max: ByteSize::bytes(acc.max().unwrap_or(0.0) as u64),
        }
    }

    /// Keep only files of at least `min_size` (the paper's 50 MB filter).
    pub fn filter_min_size(&self, min_size: ByteSize) -> Trace {
        Trace {
            files: self
                .files
                .iter()
                .filter(|f| f.size >= min_size)
                .cloned()
                .collect(),
        }
    }

    /// The first `n` files (prefix workload), cloned.
    pub fn take(&self, n: usize) -> Trace {
        Trace {
            files: self.files.iter().take(n).cloned().collect(),
        }
    }

    /// Serialise to JSON (one object; used to snapshot workloads for experiments).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail") // lint:allow(panic) -- serialising owned plain data cannot fail
    }

    /// Parse a trace from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_matches_paper_statistics() {
        // 20 000 files keep the test fast while pinning the distribution.
        let trace = TraceConfig::scaled(20_000).generate(7);
        let stats = trace.stats();
        assert_eq!(stats.count, 20_000);
        let mean_mb = stats.mean.as_mb();
        let sd_mb = stats.std_dev.as_mb();
        assert!((mean_mb - 243.0).abs() < 5.0, "mean {mean_mb} MB");
        assert!((sd_mb - 55.0).abs() < 5.0, "sd {sd_mb} MB");
        assert!(stats.min >= ByteSize::mb(50));
        assert!(stats.max <= ByteSize::gb(2));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceConfig::scaled(500).generate(3);
        let b = TraceConfig::scaled(500).generate(3);
        assert_eq!(a.files, b.files);
        let c = TraceConfig::scaled(500).generate(4);
        assert_ne!(a.files, c.files);
    }

    #[test]
    fn names_are_unique() {
        let trace = TraceConfig::scaled(5_000).generate(1);
        let mut names: Vec<&str> = trace.files.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5_000);
    }

    #[test]
    fn total_size_scales_with_count() {
        // The paper's full trace totals 278.7 TB for 1.2 M files; a proportional
        // slice should total ~0.232 TB per 1000 files.
        let trace = TraceConfig::scaled(10_000).generate(2);
        let per_file_mb = trace.total_size().as_mb() / 10_000.0;
        assert!(
            (per_file_mb - 243.0).abs() < 5.0,
            "per-file {per_file_mb} MB"
        );
    }

    #[test]
    fn filter_and_take() {
        let trace = Trace::from_files(vec![
            FileRecord::new("a", ByteSize::mb(10)),
            FileRecord::new("b", ByteSize::mb(100)),
            FileRecord::new("c", ByteSize::mb(60)),
        ]);
        let filtered = trace.filter_min_size(ByteSize::mb(50));
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.files[0].name, "b");
        let prefix = trace.take(2);
        assert_eq!(prefix.len(), 2);
        assert!(trace.take(100).len() == 3);
    }

    #[test]
    fn json_round_trip() {
        let trace = TraceConfig::scaled(50).generate(11);
        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.files, trace.files);
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::default();
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.total, ByteSize::ZERO);
    }
}
