//! Contributed-capacity distributions.
//!
//! Two populations appear in the paper's evaluation:
//!
//! * the 10 000-node simulation assigns each node a contributed capacity drawn
//!   from a normal distribution with mean 45 GB and standard deviation 10 GB,
//!   following published studies of free desktop disk space (Section 6.1) —
//!   439.1 TB in aggregate;
//! * the 32-machine Condor pool contributes between 2 GB and 15 GB per node,
//!   uniformly distributed (Section 6.4).

use peerstripe_sim::dist::{Distribution, TruncatedNormal, Uniform};
use peerstripe_sim::{ByteSize, DetRng};
use serde::{Deserialize, Serialize};

/// A distribution of per-node contributed storage capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityModel {
    /// Normal distribution (truncated at zero and at `mean + 6σ`).
    Normal {
        /// Mean contributed capacity.
        mean: ByteSize,
        /// Standard deviation of contributed capacity.
        std_dev: ByteSize,
    },
    /// Uniform distribution over `[lo, hi]`.
    Uniform {
        /// Minimum contributed capacity.
        lo: ByteSize,
        /// Maximum contributed capacity.
        hi: ByteSize,
    },
    /// Every node contributes exactly the same capacity.
    Fixed(ByteSize),
}

impl CapacityModel {
    /// The 10 000-node simulation model: N(45 GB, 10 GB).
    pub fn paper_desktop_grid() -> Self {
        CapacityModel::Normal {
            mean: ByteSize::gb(45),
            std_dev: ByteSize::gb(10),
        }
    }

    /// The Condor case-study model: Uniform(2 GB, 15 GB).
    pub fn paper_condor_pool() -> Self {
        CapacityModel::Uniform {
            lo: ByteSize::gb(2),
            hi: ByteSize::gb(15),
        }
    }

    /// Sample capacities for `n` nodes.
    pub fn sample(&self, n: usize, rng: &mut DetRng) -> Vec<ByteSize> {
        let mut rng = rng.fork("capacity");
        match *self {
            CapacityModel::Normal { mean, std_dev } => {
                let dist = TruncatedNormal::new(
                    mean.as_u64() as f64,
                    std_dev.as_u64() as f64,
                    0.0,
                    mean.as_u64() as f64 + 6.0 * std_dev.as_u64() as f64,
                );
                (0..n)
                    .map(|_| ByteSize::bytes(dist.sample(&mut rng).round() as u64))
                    .collect()
            }
            CapacityModel::Uniform { lo, hi } => {
                let dist = Uniform::new(lo.as_u64() as f64, hi.as_u64() as f64 + 1.0);
                (0..n)
                    .map(|_| ByteSize::bytes(dist.sample(&mut rng).floor() as u64))
                    .collect()
            }
            CapacityModel::Fixed(size) => vec![size; n],
        }
    }

    /// Expected mean of the model.
    pub fn expected_mean(&self) -> ByteSize {
        match *self {
            CapacityModel::Normal { mean, .. } => mean,
            CapacityModel::Uniform { lo, hi } => ByteSize::bytes((lo.as_u64() + hi.as_u64()) / 2),
            CapacityModel::Fixed(size) => size,
        }
    }
}

/// Aggregate capacity of a sampled population.
pub fn total_capacity(capacities: &[ByteSize]) -> ByteSize {
    capacities.iter().copied().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_grid_population_matches_paper_aggregate() {
        // The paper reports a total simulated capacity of 439.1 TB for 10 000
        // nodes at N(45 GB, 10 GB); mean 45 GB/node → ~439 TB.  Use 10 000 nodes
        // to check the aggregate is in the right ballpark.
        let mut rng = DetRng::new(1);
        let caps = CapacityModel::paper_desktop_grid().sample(10_000, &mut rng);
        let total = total_capacity(&caps).as_tb();
        assert!((total - 439.0).abs() < 10.0, "total {total} TB");
        assert!(caps.iter().all(|c| !c.is_zero()));
    }

    #[test]
    fn condor_pool_is_within_bounds() {
        let mut rng = DetRng::new(2);
        let model = CapacityModel::paper_condor_pool();
        let caps = model.sample(32, &mut rng);
        assert_eq!(caps.len(), 32);
        for c in &caps {
            assert!(*c >= ByteSize::gb(2) && *c <= ByteSize::gb(15) + ByteSize::bytes(1));
        }
        // Expected mean 8.5 GB.
        assert_eq!(
            model.expected_mean(),
            ByteSize::bytes((2 * 1024u64.pow(3) + 15 * 1024u64.pow(3)) / 2)
        );
    }

    #[test]
    fn fixed_model_is_constant() {
        let mut rng = DetRng::new(3);
        let caps = CapacityModel::Fixed(ByteSize::gb(10)).sample(5, &mut rng);
        assert_eq!(caps, vec![ByteSize::gb(10); 5]);
        assert_eq!(
            CapacityModel::Fixed(ByteSize::gb(10)).expected_mean(),
            ByteSize::gb(10)
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = CapacityModel::paper_desktop_grid();
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        assert_eq!(model.sample(100, &mut r1), model.sample(100, &mut r2));
    }

    #[test]
    fn normal_capacities_are_never_negative() {
        // A model whose mean is close to zero exercises the truncation.
        let model = CapacityModel::Normal {
            mean: ByteSize::gb(2),
            std_dev: ByteSize::gb(2),
        };
        let mut rng = DetRng::new(4);
        let caps = model.sample(10_000, &mut rng);
        assert!(caps.iter().all(|c| c.as_u64() < ByteSize::gb(20).as_u64()));
    }
}
