//! Empirical node session/downtime traces.
//!
//! The paper targets desktop grids, whose machines are famously *diurnal*:
//! they are up through the workday, down overnight and over weekends, with a
//! long tail of always-on lab machines.  The repair subsystem's churn process
//! can draw session and downtime lengths either from closed-form
//! distributions or from an empirical trace of observed durations; this module
//! provides the trace form — a bag of `(session, downtime)` samples in
//! seconds — plus a deterministic synthesiser with desktop-grid statistics and
//! a JSON round trip so harvested traces can be dropped in.

use peerstripe_sim::{DetRng, OnlineStats};
use serde::{Deserialize, Serialize};

/// Empirical session/downtime durations (seconds) a churn process samples from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// Observed session (uptime) lengths, in seconds.
    pub sessions: Vec<f64>,
    /// Observed downtime lengths, in seconds.
    pub downtimes: Vec<f64>,
}

impl SessionTrace {
    /// Create a trace from explicit samples.  Panics if either bag is empty or
    /// contains a non-positive duration (a zero-length session would make the
    /// churn process spin in place).
    pub fn new(sessions: Vec<f64>, downtimes: Vec<f64>) -> Self {
        assert!(
            !sessions.is_empty() && !downtimes.is_empty(),
            "session trace needs at least one sample of each kind"
        );
        for d in sessions.iter().chain(&downtimes) {
            assert!(d.is_finite() && *d > 0.0, "durations must be positive");
        }
        SessionTrace {
            sessions,
            downtimes,
        }
    }

    /// Synthesise a desktop-grid trace of `machines` session/downtime pairs:
    /// a ~70 % office population (workday sessions around 9 h, overnight
    /// downtimes around 15 h), ~20 % laptops (short sessions, short gaps), and
    /// ~10 % always-on lab machines (multi-day sessions, brief reboots).
    pub fn synthetic_desktop_grid(machines: usize, seed: u64) -> Self {
        assert!(machines > 0, "need at least one machine");
        let mut rng = DetRng::new(seed).fork("session-trace");
        let hour = 3_600.0;
        let mut sessions = Vec::with_capacity(machines);
        let mut downtimes = Vec::with_capacity(machines);
        for _ in 0..machines {
            let class = rng.next_f64();
            let (s_mean, s_sd, d_mean, d_sd) = if class < 0.70 {
                (9.0 * hour, 2.0 * hour, 15.0 * hour, 3.0 * hour)
            } else if class < 0.90 {
                (2.0 * hour, 1.0 * hour, 4.0 * hour, 2.0 * hour)
            } else {
                (72.0 * hour, 24.0 * hour, 0.5 * hour, 0.25 * hour)
            };
            let clamp = |x: f64, lo: f64| x.max(lo);
            sessions.push(clamp(s_mean + s_sd * rng.standard_normal(), 0.1 * hour));
            downtimes.push(clamp(d_mean + d_sd * rng.standard_normal(), 0.05 * hour));
        }
        SessionTrace {
            sessions,
            downtimes,
        }
    }

    /// Draw one session length.
    pub fn sample_session(&self, rng: &mut DetRng) -> f64 {
        *rng.choose(&self.sessions)
            .expect("non-empty by construction") // lint:allow(panic) -- sessions verified non-empty at trace construction
    }

    /// Draw one downtime length.
    pub fn sample_downtime(&self, rng: &mut DetRng) -> f64 {
        *rng.choose(&self.downtimes)
            .expect("non-empty by construction") // lint:allow(panic) -- downtimes verified non-empty at trace construction
    }

    /// Mean session length in seconds.
    pub fn mean_session(&self) -> f64 {
        let mut s = OnlineStats::new();
        for &x in &self.sessions {
            s.push(x);
        }
        s.mean()
    }

    /// Mean downtime length in seconds.
    pub fn mean_downtime(&self) -> f64 {
        let mut s = OnlineStats::new();
        for &x in &self.downtimes {
            s.push(x);
        }
        s.mean()
    }

    /// Serialise to JSON (for snapshotting harvested availability traces).
    pub fn to_json(&self) -> String {
        // lint:allow(panic) -- serialising owned plain data cannot fail
        serde_json::to_string(self).expect("session trace serialisation cannot fail")
    }

    /// Parse a trace from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_has_desktop_grid_shape() {
        let trace = SessionTrace::synthetic_desktop_grid(5_000, 1);
        assert_eq!(trace.sessions.len(), 5_000);
        assert_eq!(trace.downtimes.len(), 5_000);
        // The office/laptop/lab mixture puts the mean session between a laptop
        // burst and a lab machine's multi-day uptime.
        let mean_session_h = trace.mean_session() / 3_600.0;
        assert!(
            (5.0..25.0).contains(&mean_session_h),
            "mean session {mean_session_h} h"
        );
        let mean_down_h = trace.mean_downtime() / 3_600.0;
        assert!(
            (5.0..15.0).contains(&mean_down_h),
            "mean downtime {mean_down_h} h"
        );
        assert!(trace.sessions.iter().all(|&s| s > 0.0));
        assert!(trace.downtimes.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn generation_and_sampling_are_deterministic() {
        let a = SessionTrace::synthetic_desktop_grid(100, 7);
        let b = SessionTrace::synthetic_desktop_grid(100, 7);
        assert_eq!(a, b);
        let mut r1 = DetRng::new(3);
        let mut r2 = DetRng::new(3);
        for _ in 0..50 {
            assert_eq!(a.sample_session(&mut r1), b.sample_session(&mut r2));
            assert_eq!(a.sample_downtime(&mut r1), b.sample_downtime(&mut r2));
        }
    }

    #[test]
    fn samples_come_from_the_bag() {
        let trace = SessionTrace::new(vec![10.0, 20.0], vec![5.0]);
        let mut rng = DetRng::new(9);
        for _ in 0..20 {
            let s = trace.sample_session(&mut rng);
            assert!(s == 10.0 || s == 20.0);
            assert_eq!(trace.sample_downtime(&mut rng), 5.0);
        }
    }

    #[test]
    fn json_round_trip() {
        let trace = SessionTrace::synthetic_desktop_grid(25, 11);
        let back = SessionTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
        assert!(SessionTrace::from_json("nope").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_is_rejected() {
        let _ = SessionTrace::new(vec![], vec![1.0]);
    }
}
