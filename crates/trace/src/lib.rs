//! Workload synthesis: file traces and contributed-capacity distributions.
//!
//! The paper drives its 10 000-node simulations with (a) a large-file trace
//! (1.2 M files ≥ 50 MB, mean 243 MB, σ 55 MB) and (b) node capacities drawn
//! from N(45 GB, 10 GB); the Condor case study uses a 32-node pool contributing
//! Uniform(2 GB, 15 GB) each.  Only the aggregate statistics of the original
//! trace are published, so this crate synthesises workloads with matching
//! statistics (see DESIGN.md, substitution table).
//!
//! * [`filetrace`] — [`TraceConfig`]/[`Trace`] generation, statistics, JSON
//!   import/export;
//! * [`capacity`] — [`CapacityModel`] for per-node contributed storage;
//! * [`sessions`] — [`SessionTrace`] empirical session/downtime durations for
//!   the repair subsystem's trace-derived churn mode.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capacity;
pub mod filetrace;
pub mod sessions;

pub use capacity::{total_capacity, CapacityModel};
pub use filetrace::{FileRecord, Trace, TraceConfig, TraceStats};
pub use sessions::SessionTrace;
