//! Multicast-based replica creation (Bullet + RanSub).
//!
//! Instead of making a primary node responsible for pushing replicas one by one,
//! PeerStripe creates the `k` replicas of an encoded block *simultaneously* by
//! multicasting the block over a locality-aware overlay tree (Section 4.4.1 of
//! the paper).  This crate implements the three pieces:
//!
//! * [`tree::MulticastTree`] — binary and proximity-greedy tree construction;
//! * [`ransub::RanSub`] — the epoch-driven distribute/collect random-subset
//!   protocol that tells every member what data its peers hold;
//! * [`bullet::BulletSim`] — Bullet-style parent-push + peer-pull packet
//!   dissemination, reporting the per-epoch packet counts behind Figures 11
//!   and 12.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bullet;
pub mod ransub;
pub mod tree;

pub use bullet::{BulletConfig, BulletRun, BulletSim, EpochStats};
pub use ransub::{RanSub, RanSubViews};
pub use tree::MulticastTree;
