//! Bullet-style packet dissemination over the multicast tree.
//!
//! Bullet (Kostić et al., SOSP'03) distributes a large object by pushing
//! *disjoint* packet subsets down an overlay tree while every node also *pulls*
//! missing packets from the peers it learns about through RanSub.  The paper
//! adopts exactly this mechanism to create all replicas of an encoded block
//! simultaneously (Section 4.4.1) and evaluates it in Figures 11 and 12: a
//! 63-node binary tree, a chunk split into 1 000 packets, and RanSub set sizes
//! between 3 % and 16 % of the tree.
//!
//! [`BulletSim`] reproduces that experiment: each epoch every node may receive a
//! bounded number of packets, drawn from what its parent and its current RanSub
//! view had *at the start of the epoch* (one overlay hop per epoch).  The
//! simulator reports the average / minimum / maximum number of packets per node
//! over time, the quantities plotted in the two figures.

use crate::ransub::RanSub;
use crate::tree::MulticastTree;
use peerstripe_sim::{DetRng, Series};

/// Configuration of a Bullet dissemination run.
#[derive(Debug, Clone)]
pub struct BulletConfig {
    /// Number of packets the chunk is divided into (the paper uses 1 000).
    pub packets: usize,
    /// RanSub view size as a fraction of the tree (3 %–16 % in Figure 11).
    pub ransub_fraction: f64,
    /// Maximum packets a node can receive per epoch (its download budget).
    pub per_epoch_budget: usize,
    /// Maximum packets a node can serve per epoch (its upload budget).
    pub upload_budget: usize,
    /// Hard stop for the simulation.
    pub max_epochs: usize,
}

impl Default for BulletConfig {
    fn default() -> Self {
        BulletConfig {
            packets: 1000,
            ransub_fraction: 0.16,
            per_epoch_budget: 4,
            // Tighter than the combined demand of a node's children, so the
            // parent push alone cannot saturate the tree and peers learned via
            // RanSub carry real load — the effect Figures 11/12 measure.
            upload_budget: 6,
            max_epochs: 2000,
        }
    }
}

/// Progress statistics for one epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch number (1-based).
    pub epoch: usize,
    /// Mean number of packets held per non-root node.
    pub avg: f64,
    /// Minimum packets held by any non-root node.
    pub min: usize,
    /// Maximum packets held by any non-root node.
    pub max: usize,
}

/// Result of a full dissemination run.
#[derive(Debug, Clone)]
pub struct BulletRun {
    /// Per-epoch statistics, in order.
    pub epochs: Vec<EpochStats>,
    /// Epoch at which every node held every packet (`None` if the run hit
    /// `max_epochs` first).
    pub completed_at: Option<usize>,
}

impl BulletRun {
    /// The average-packets-per-node curve (Figure 11's y-axis over epochs).
    pub fn avg_series(&self, label: impl Into<String>) -> Series {
        let mut s = Series::new(label);
        for e in &self.epochs {
            s.push(e.epoch as f64, e.avg);
        }
        s
    }

    /// The min / avg / max curves of Figure 12.
    pub fn spread_series(&self) -> (Series, Series, Series) {
        let mut min = Series::new("Min");
        let mut avg = Series::new("Average");
        let mut max = Series::new("Max");
        for e in &self.epochs {
            min.push(e.epoch as f64, e.min as f64);
            avg.push(e.epoch as f64, e.avg);
            max.push(e.epoch as f64, e.max as f64);
        }
        (min, avg, max)
    }
}

/// The Bullet dissemination simulator.
pub struct BulletSim {
    tree: MulticastTree,
    config: BulletConfig,
    ransub: RanSub,
    /// have[slot][packet]
    have: Vec<Vec<bool>>,
    counts: Vec<usize>,
}

impl BulletSim {
    /// Create a simulator for one chunk dissemination over the given tree.
    pub fn new(tree: MulticastTree, config: BulletConfig) -> Self {
        assert!(config.packets > 0, "at least one packet required");
        assert!(
            config.per_epoch_budget > 0,
            "download budget must be positive"
        );
        let n = tree.len();
        let ransub = RanSub::with_fraction(n, config.ransub_fraction);
        let mut have = vec![vec![false; config.packets]; n];
        // The root (source) starts with the whole chunk.
        have[tree.root()] = vec![true; config.packets];
        let mut counts = vec![0; n];
        counts[tree.root()] = config.packets;
        BulletSim {
            tree,
            config,
            ransub,
            have,
            counts,
        }
    }

    /// Number of packets currently held by a tree slot.
    pub fn packets_held(&self, slot: usize) -> usize {
        self.counts[slot]
    }

    /// True when every node holds every packet.
    pub fn is_complete(&self) -> bool {
        self.counts.iter().all(|&c| c == self.config.packets)
    }

    /// Statistics over the non-root members.
    fn stats(&self, epoch: usize) -> EpochStats {
        let receivers: Vec<usize> = (0..self.tree.len())
            .filter(|&s| s != self.tree.root())
            .collect();
        let min = receivers.iter().map(|&s| self.counts[s]).min().unwrap_or(0);
        let max = receivers.iter().map(|&s| self.counts[s]).max().unwrap_or(0);
        let sum: usize = receivers.iter().map(|&s| self.counts[s]).sum();
        EpochStats {
            epoch,
            avg: if receivers.is_empty() {
                0.0
            } else {
                sum as f64 / receivers.len() as f64
            },
            min,
            max,
        }
    }

    /// Run one epoch: refresh RanSub views, then let every node pull up to its
    /// budget of missing packets from its parent and its view, based on what the
    /// sources held at the start of the epoch.
    pub fn run_epoch(&mut self, epoch: usize, rng: &mut DetRng) -> EpochStats {
        let views = self.ransub.epoch(&self.tree, rng);
        let snapshot_counts = self.counts.clone();
        let snapshot: Vec<Vec<bool>> = self.have.clone();
        let mut uploads_left = vec![self.config.upload_budget; self.tree.len()];

        for slot in self.tree.bfs_order() {
            if slot == self.tree.root() {
                continue;
            }
            if self.counts[slot] == self.config.packets {
                continue;
            }
            let mut budget = self.config.per_epoch_budget;
            // Sources: parent first (the push path), then RanSub peers (the pull path).
            let mut sources: Vec<usize> = Vec::new();
            if let Some(p) = self.tree.parent(slot) {
                sources.push(p);
            }
            sources.extend(views.view(slot).iter().copied());
            for src in sources {
                if budget == 0 {
                    break;
                }
                if uploads_left[src] == 0 || snapshot_counts[src] == 0 {
                    continue;
                }
                // Candidate packets the source had (at epoch start) and we lack.
                // Scan from a random offset so different children of the same
                // parent pull different (diverse) packets — Bullet's disjointness.
                let start = rng.index(self.config.packets);
                let mut taken_from_src = 0usize;
                for i in 0..self.config.packets {
                    if budget == 0 || uploads_left[src] == 0 {
                        break;
                    }
                    let p = (start + i) % self.config.packets;
                    if snapshot[src][p] && !self.have[slot][p] {
                        self.have[slot][p] = true;
                        self.counts[slot] += 1;
                        budget -= 1;
                        uploads_left[src] -= 1;
                        taken_from_src += 1;
                    }
                }
                let _ = taken_from_src;
            }
        }
        self.stats(epoch)
    }

    /// Run until completion or the epoch limit, collecting per-epoch statistics.
    pub fn run(mut self, rng: &mut DetRng) -> BulletRun {
        let mut epochs = Vec::new();
        let mut completed_at = None;
        for epoch in 1..=self.config.max_epochs {
            let stats = self.run_epoch(epoch, rng);
            epochs.push(stats);
            if self.is_complete() {
                completed_at = Some(epoch);
                break;
            }
        }
        BulletRun {
            epochs,
            completed_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tree() -> MulticastTree {
        MulticastTree::binary(5)
    }

    fn small_config(fraction: f64) -> BulletConfig {
        BulletConfig {
            packets: 200,
            ransub_fraction: fraction,
            per_epoch_budget: 4,
            upload_budget: 6,
            max_epochs: 2000,
        }
    }

    #[test]
    fn dissemination_completes() {
        let mut rng = DetRng::new(1);
        let run = BulletSim::new(paper_tree(), small_config(0.16)).run(&mut rng);
        assert!(
            run.completed_at.is_some(),
            "all 63 nodes must eventually hold all packets"
        );
        let last = run.epochs.last().unwrap();
        assert_eq!(last.min, 200);
        assert_eq!(last.max, 200);
        assert!((last.avg - 200.0).abs() < 1e-9);
    }

    #[test]
    fn packet_counts_grow_monotonically() {
        let mut rng = DetRng::new(2);
        let run = BulletSim::new(paper_tree(), small_config(0.08)).run(&mut rng);
        for w in run.epochs.windows(2) {
            assert!(w[1].avg >= w[0].avg);
            assert!(w[1].min >= w[0].min);
            assert!(w[1].max >= w[0].max);
        }
        // Max is bounded by the per-epoch budget times epochs.
        for e in &run.epochs {
            assert!(e.max <= e.epoch * 4);
        }
    }

    #[test]
    fn larger_ransub_is_not_slower() {
        // Figure 11: increasing the RanSub set size speeds dissemination up to a
        // point.  Compare 3% against 16%.
        let mut rng_a = DetRng::new(3);
        let slow = BulletSim::new(paper_tree(), small_config(0.03)).run(&mut rng_a);
        let mut rng_b = DetRng::new(3);
        let fast = BulletSim::new(paper_tree(), small_config(0.16)).run(&mut rng_b);
        let slow_done = slow.completed_at.unwrap();
        let fast_done = fast.completed_at.unwrap();
        assert!(
            fast_done <= slow_done,
            "16% RanSub ({fast_done} epochs) must not be slower than 3% ({slow_done} epochs)"
        );
        // And at the halfway point of the slow run the fast run holds more data.
        let mid = slow_done / 2;
        let slow_mid = slow.epochs[mid - 1].avg;
        let fast_mid = fast.epochs[(mid - 1).min(fast.epochs.len() - 1)].avg;
        assert!(fast_mid >= slow_mid);
    }

    #[test]
    fn effect_of_ransub_saturates() {
        // Figure 11's second observation: beyond ~8% the benefit levels off.
        let mut done = Vec::new();
        for fraction in [0.08, 0.16] {
            let mut rng = DetRng::new(4);
            let run = BulletSim::new(paper_tree(), small_config(fraction)).run(&mut rng);
            done.push(run.completed_at.unwrap() as f64);
        }
        let ratio = done[0] / done[1];
        assert!(
            ratio < 1.35,
            "8% → 16% should change completion time only marginally (ratio {ratio})"
        );
    }

    #[test]
    fn spread_series_have_equal_length_and_order() {
        let mut rng = DetRng::new(5);
        let run = BulletSim::new(paper_tree(), small_config(0.16)).run(&mut rng);
        let (min, avg, max) = run.spread_series();
        assert_eq!(min.points.len(), run.epochs.len());
        assert_eq!(avg.points.len(), run.epochs.len());
        assert_eq!(max.points.len(), run.epochs.len());
        for i in 0..min.points.len() {
            assert!(min.points[i].1 <= avg.points[i].1 + 1e-9);
            assert!(avg.points[i].1 <= max.points[i].1 + 1e-9);
        }
        let series = run.avg_series("RanSub = 16%");
        assert_eq!(series.name, "RanSub = 16%");
    }

    #[test]
    fn source_is_never_counted_as_a_receiver() {
        let sim = BulletSim::new(paper_tree(), small_config(0.1));
        assert_eq!(sim.packets_held(0), 200);
        let stats = sim.stats(0);
        assert_eq!(stats.max, 0, "receivers start empty");
    }
}
