//! Multicast tree construction.
//!
//! PeerStripe creates the replicas of an encoded block *simultaneously* by
//! multicasting the block over an overlay tree whose root is the storing node
//! and whose leaves are the chosen replica holders (Section 4.4.1, Figure 5).
//! The tree is built greedily from Pastry's proximity-aware routing state: at
//! every step the closest available nodes (by the proximity metric) become the
//! children, which gives strong locality at each hop even though the overall
//! tree is not guaranteed shortest-path.
//!
//! The evaluation of Figures 11 and 12 uses a fixed binary tree of height five
//! (63 nodes, 32 leaf replicas); [`MulticastTree::binary`] builds exactly that.

use peerstripe_overlay::{NodeRef, OverlaySim};

/// A rooted multicast tree over overlay nodes.
#[derive(Debug, Clone)]
pub struct MulticastTree {
    /// Parent of each tree member (`None` for the root), indexed by member slot.
    parents: Vec<Option<usize>>,
    /// Children of each member, indexed by member slot.
    children: Vec<Vec<usize>>,
    /// The overlay node each member slot corresponds to.
    nodes: Vec<NodeRef>,
}

impl MulticastTree {
    /// Build a complete binary tree of the given height (height 0 = root only).
    ///
    /// Member slots are assigned in breadth-first order; the overlay node of slot
    /// `i` is simply `i` unless a node list is supplied via
    /// [`MulticastTree::binary_over_nodes`].
    pub fn binary(height: u32) -> Self {
        let count = (1usize << (height + 1)) - 1;
        Self::binary_over_nodes((0..count).collect())
    }

    /// Build a complete binary tree whose breadth-first slots map to the given
    /// overlay nodes (the first node is the root/source).
    pub fn binary_over_nodes(nodes: Vec<NodeRef>) -> Self {
        let count = nodes.len();
        assert!(count > 0, "tree needs at least a root");
        let mut parents = vec![None; count];
        let mut children = vec![Vec::new(); count];
        for (i, parent) in parents.iter_mut().enumerate().skip(1) {
            let p = (i - 1) / 2;
            *parent = Some(p);
            children[p].push(i);
        }
        MulticastTree {
            parents,
            children,
            nodes,
        }
    }

    /// Build a locality-aware tree from `source` over the `replicas`, attaching at
    /// most `fanout` children per node, always choosing the proximity-closest
    /// unattached node next (the greedy construction of Section 4.4.1).
    pub fn locality_aware(
        overlay: &OverlaySim,
        source: NodeRef,
        replicas: &[NodeRef],
        fanout: usize,
    ) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        let mut remaining: Vec<NodeRef> =
            replicas.iter().copied().filter(|r| *r != source).collect();
        let mut nodes = vec![source];
        let mut parents = vec![None];
        let mut children: Vec<Vec<usize>> = vec![Vec::new()];
        let mut frontier = vec![0usize];
        while !remaining.is_empty() {
            let mut next_frontier = Vec::new();
            for &slot in &frontier {
                if remaining.is_empty() {
                    break;
                }
                let picked = overlay.closest_by_proximity(nodes[slot], &remaining, fanout);
                for node in picked {
                    remaining.retain(|r| *r != node);
                    let child_slot = nodes.len();
                    nodes.push(node);
                    parents.push(Some(slot));
                    children.push(Vec::new());
                    children[slot].push(child_slot);
                    next_frontier.push(child_slot);
                }
            }
            if next_frontier.is_empty() {
                // Should not happen (fanout ≥ 1 always consumes a node), but keep
                // the loop well founded.
                break;
            }
            frontier = next_frontier;
        }
        MulticastTree {
            parents,
            children,
            nodes,
        }
    }

    /// Number of members (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The root slot (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// The overlay node behind a member slot.
    pub fn node(&self, slot: usize) -> NodeRef {
        self.nodes[slot]
    }

    /// Parent slot of a member (None for the root).
    pub fn parent(&self, slot: usize) -> Option<usize> {
        self.parents[slot]
    }

    /// Children slots of a member.
    pub fn children(&self, slot: usize) -> &[usize] {
        &self.children[slot]
    }

    /// Member slots in breadth-first order starting at the root.
    pub fn bfs_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut queue = std::collections::VecDeque::from([self.root()]);
        while let Some(slot) = queue.pop_front() {
            order.push(slot);
            queue.extend(self.children(slot).iter().copied());
        }
        order
    }

    /// Leaf slots (members with no children).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&s| self.children[s].is_empty())
            .collect()
    }

    /// Depth of a slot (root = 0).
    pub fn depth(&self, slot: usize) -> usize {
        let mut d = 0;
        let mut cur = slot;
        while let Some(p) = self.parents[cur] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (maximum depth over all slots).
    pub fn height(&self) -> usize {
        (0..self.len()).map(|s| self.depth(s)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_sim::DetRng;

    #[test]
    fn binary_tree_of_height_five_matches_paper_setup() {
        // "We used a binary tree with a height of five … a total of 63 nodes",
        // 32 of which are the replica-holding leaves.
        let tree = MulticastTree::binary(5);
        assert_eq!(tree.len(), 63);
        assert_eq!(tree.leaves().len(), 32);
        assert_eq!(tree.height(), 5);
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.children(0).len(), 2);
        assert_eq!(tree.parent(0), None);
        assert_eq!(tree.parent(1), Some(0));
        assert_eq!(tree.parent(62), Some(30));
    }

    #[test]
    fn bfs_order_visits_every_member_once() {
        let tree = MulticastTree::binary(4);
        let order = tree.bfs_order();
        assert_eq!(order.len(), tree.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..tree.len()).collect::<Vec<_>>());
        // BFS visits shallower slots first.
        for w in order.windows(2) {
            assert!(tree.depth(w[0]) <= tree.depth(w[1]));
        }
    }

    #[test]
    fn single_node_tree() {
        let tree = MulticastTree::binary(0);
        assert_eq!(tree.len(), 1);
        assert!(tree.is_empty());
        assert_eq!(tree.leaves(), vec![0]);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn locality_aware_tree_spans_all_replicas() {
        let mut rng = DetRng::new(1);
        let overlay = OverlaySim::new(200, &mut rng);
        let source = 0;
        let replicas: Vec<NodeRef> = (1..33).collect();
        let tree = MulticastTree::locality_aware(&overlay, source, &replicas, 2);
        assert_eq!(tree.len(), 33);
        let mut members: Vec<NodeRef> = (0..tree.len()).map(|s| tree.node(s)).collect();
        members.sort_unstable();
        let mut expected: Vec<NodeRef> = std::iter::once(source).chain(replicas.clone()).collect();
        expected.sort_unstable();
        assert_eq!(members, expected);
        // Fanout is respected.
        for s in 0..tree.len() {
            assert!(tree.children(s).len() <= 2);
        }
    }

    #[test]
    fn locality_aware_tree_prefers_close_children() {
        let mut rng = DetRng::new(2);
        let overlay = OverlaySim::new(300, &mut rng);
        let source = 5;
        let replicas: Vec<NodeRef> = (10..74).collect();
        let tree = MulticastTree::locality_aware(&overlay, source, &replicas, 2);
        // The root's children must be the proximity-closest replicas overall.
        let child_nodes: Vec<NodeRef> = tree.children(0).iter().map(|&c| tree.node(c)).collect();
        let best = overlay.closest_by_proximity(source, &replicas, 2);
        assert_eq!(child_nodes, best);
        // Average parent-child proximity must beat average all-pairs proximity
        // (the whole point of the locality-aware construction).
        let mut tree_dist = 0.0;
        let mut tree_edges = 0usize;
        for s in 1..tree.len() {
            let p = tree.parent(s).unwrap();
            tree_dist += overlay.proximity(tree.node(p), tree.node(s));
            tree_edges += 1;
        }
        let mut rng2 = DetRng::new(3);
        let mut rand_dist = 0.0;
        for _ in 0..1000 {
            let a = replicas[rng2.index(replicas.len())];
            let b = replicas[rng2.index(replicas.len())];
            rand_dist += overlay.proximity(a, b);
        }
        assert!(
            tree_dist / tree_edges as f64 <= rand_dist / 1000.0,
            "locality-aware edges should be shorter than random pairs"
        );
    }

    #[test]
    fn locality_aware_handles_source_in_replica_list() {
        let mut rng = DetRng::new(4);
        let overlay = OverlaySim::new(50, &mut rng);
        let replicas: Vec<NodeRef> = (0..10).collect();
        let tree = MulticastTree::locality_aware(&overlay, 0, &replicas, 3);
        assert_eq!(tree.len(), 10, "the source is not duplicated");
    }
}
