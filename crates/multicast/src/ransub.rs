//! RanSub: epoch-driven random-subset dissemination (Kostić et al., USITS'03).
//!
//! Bullet relies on RanSub to give every tree member, each epoch, a uniformly
//! random *subset* of the other members together with summaries of what data
//! they hold.  An epoch has two phases (Section 2.3 of the paper):
//!
//! * **distribute** — messages flow down the tree carrying the sending node's
//!   random subset (plus its parent's and siblings' subsets);
//! * **collect** — messages flow back up, each node compacting its own candidate
//!   set and its children's into a fixed-size uniform sample for its parent.
//!
//! The implementation below runs those two phases literally: collect builds,
//! bottom-up, a uniform reservoir sample of each subtree; distribute then hands
//! every node a sample drawn from the root's global reservoir plus its local
//! neighbourhood.  The resulting per-node views are the "RanSub sets" whose size
//! (as a percentage of the tree) is the x-parameter of Figure 11.

use crate::tree::MulticastTree;
use peerstripe_sim::DetRng;

/// Per-node random-subset views for one epoch.
#[derive(Debug, Clone)]
pub struct RanSubViews {
    views: Vec<Vec<usize>>,
}

impl RanSubViews {
    /// The member slots visible to `slot` this epoch (never contains `slot` itself).
    pub fn view(&self, slot: usize) -> &[usize] {
        &self.views[slot]
    }

    /// Number of members with views (tree size).
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no views exist.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// The RanSub engine: runs one distribute/collect cycle per epoch.
#[derive(Debug, Clone)]
pub struct RanSub {
    /// Size of the per-node subset, as a number of members.
    subset_size: usize,
}

impl RanSub {
    /// Create an engine whose per-node views contain `subset_size` members.
    pub fn new(subset_size: usize) -> Self {
        assert!(subset_size > 0, "RanSub subset size must be positive");
        RanSub { subset_size }
    }

    /// Create an engine whose views cover `fraction` of the tree (Figure 11
    /// parameterises RanSub as a percentage of the total nodes in the tree).
    pub fn with_fraction(tree_size: usize, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0);
        let size = ((tree_size as f64) * fraction).round().max(1.0) as usize;
        RanSub::new(size)
    }

    /// Configured subset size.
    pub fn subset_size(&self) -> usize {
        self.subset_size
    }

    /// Run one epoch (collect then distribute) and return every node's view.
    pub fn epoch(&self, tree: &MulticastTree, rng: &mut DetRng) -> RanSubViews {
        let n = tree.len();
        // ---- Collect phase: bottom-up reservoir sampling of each subtree. ----
        // `subtree_sample[s]` is a uniform sample (≤ subset_size) of the members
        // of the subtree rooted at s, together with the subtree's true size so
        // that merging keeps the sample uniform.
        let mut subtree_sample: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut subtree_size: Vec<usize> = vec![0; n];
        let order = tree.bfs_order();
        for &slot in order.iter().rev() {
            let mut pool: Vec<(usize, usize)> = vec![(slot, 1)]; // (member, weight)
            for &child in tree.children(slot) {
                pool.push((child, 0)); // child itself is inside its sample already
                for &m in &subtree_sample[child] {
                    pool.push((m, 0));
                }
            }
            // Flatten: candidates are this node plus all sampled descendants.
            let mut candidates: Vec<usize> = vec![slot];
            for &child in tree.children(slot) {
                candidates.extend(subtree_sample[child].iter().copied());
                candidates.push(child);
            }
            candidates.sort_unstable();
            candidates.dedup();
            let total: usize = 1 + tree
                .children(slot)
                .iter()
                .map(|&c| subtree_size[c])
                .sum::<usize>();
            subtree_size[slot] = total;
            // Weighted-uniform compaction: keep at most subset_size candidates.
            rng.shuffle(&mut candidates);
            candidates.truncate(self.subset_size);
            subtree_sample[slot] = candidates;
            let _ = pool;
        }
        // ---- Distribute phase: top-down delivery of global samples. ----
        // Each node's view is drawn from the root's global sample plus the
        // samples of its parent and siblings (what the distribute message carries).
        let global = &subtree_sample[tree.root()];
        let mut views: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &slot in &order {
            let mut candidates: Vec<usize> = global.clone();
            if let Some(parent) = tree.parent(slot) {
                candidates.push(parent);
                for &sib in tree.children(parent) {
                    if sib != slot {
                        candidates.push(sib);
                        candidates.extend(subtree_sample[sib].iter().copied());
                    }
                }
            }
            candidates.retain(|&m| m != slot);
            candidates.sort_unstable();
            candidates.dedup();
            rng.shuffle(&mut candidates);
            candidates.truncate(self.subset_size);
            views[slot] = candidates;
        }
        RanSubViews { views }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_have_requested_size_and_exclude_self() {
        let tree = MulticastTree::binary(5);
        let engine = RanSub::with_fraction(tree.len(), 0.16);
        assert_eq!(engine.subset_size(), 10);
        let mut rng = DetRng::new(1);
        let views = engine.epoch(&tree, &mut rng);
        assert_eq!(views.len(), 63);
        for slot in 0..tree.len() {
            let v = views.view(slot);
            assert!(v.len() <= 10);
            assert!(!v.is_empty());
            assert!(!v.contains(&slot), "a node never appears in its own view");
            let mut sorted = v.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), v.len(), "views contain no duplicates");
        }
    }

    #[test]
    fn fraction_parameterisation_matches_paper_range() {
        // 3% of 63 nodes ≈ 2 members, 16% ≈ 10 members.
        assert_eq!(RanSub::with_fraction(63, 0.03).subset_size(), 2);
        assert_eq!(RanSub::with_fraction(63, 0.08).subset_size(), 5);
        assert_eq!(RanSub::with_fraction(63, 0.16).subset_size(), 10);
    }

    #[test]
    fn views_change_between_epochs() {
        let tree = MulticastTree::binary(4);
        let engine = RanSub::with_fraction(tree.len(), 0.2);
        let mut rng = DetRng::new(2);
        let a = engine.epoch(&tree, &mut rng);
        let b = engine.epoch(&tree, &mut rng);
        let differing = (0..tree.len()).filter(|&s| a.view(s) != b.view(s)).count();
        assert!(
            differing > tree.len() / 2,
            "views should be re-randomised every epoch"
        );
    }

    #[test]
    fn views_cover_distant_parts_of_the_tree() {
        // Over many epochs a leaf should see members outside its own branch —
        // the whole point of RanSub's uniform sampling.
        let tree = MulticastTree::binary(5);
        let engine = RanSub::with_fraction(tree.len(), 0.1);
        let mut rng = DetRng::new(3);
        let leaf = 62; // right-most leaf
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let views = engine.epoch(&tree, &mut rng);
            seen.extend(views.view(leaf).iter().copied());
        }
        assert!(
            seen.len() > 30,
            "a leaf should eventually see most of the tree, saw {}",
            seen.len()
        );
        // Includes members of the opposite subtree.
        assert!(seen
            .iter()
            .any(|&m| (31..=46).contains(&m) || (1..=2).contains(&m)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_subset_rejected() {
        let _ = RanSub::new(0);
    }
}
