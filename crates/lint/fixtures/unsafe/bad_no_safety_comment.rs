//! Failing fixture: an `unsafe` block with no `SAFETY:` comment — the
//! invariant lives only in the author's head.

pub fn reinterpret(v: &[u8]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast(), v.len() / 4) }
}
