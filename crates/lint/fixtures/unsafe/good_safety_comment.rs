//! Passing fixture: every `unsafe` block carries a `SAFETY:` comment that
//! states the invariant the compiler cannot check.

pub fn split_bytes(v: &mut [u8]) -> (&mut [u8], &mut [u8]) {
    let mid = v.len() / 2;
    let ptr = v.as_mut_ptr();
    let len = v.len();
    // SAFETY: the two halves [0, mid) and [mid, len) are disjoint slices of
    // one allocation, so handing out both &mut borrows aliases nothing.
    unsafe {
        (
            std::slice::from_raw_parts_mut(ptr, mid),
            std::slice::from_raw_parts_mut(ptr.add(mid), len - mid),
        )
    }
}
