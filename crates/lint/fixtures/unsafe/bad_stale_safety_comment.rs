//! Failing fixture: a `SAFETY:` comment exists but sits too far above the
//! `unsafe` block to plausibly describe it (> 3 lines away).

// SAFETY: this comment describes an invariant of a function that was
// refactored away; it no longer sits next to any unsafe code.

pub fn length_in_words(v: &[u8]) -> usize {
    v.len() / 4
}

pub fn reinterpret(v: &[u8]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast(), v.len() / 4) }
}
