//! Passing fixture: plain safe code — the rule has nothing to say.

pub fn checksum(data: &[u8]) -> u32 {
    data.iter().fold(0u32, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(u32::from(*b))
    })
}
