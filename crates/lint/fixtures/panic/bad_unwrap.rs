//! Failing fixture: unwrap/expect/panic! in library code without waivers.
//! Each of these aborts a long simulation run instead of surfacing an error.

pub fn load(path: &str) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    if text.is_empty() {
        panic!("empty input file");
    }
    text
}

pub fn first_line(text: &str) -> &str {
    text.lines().next().expect("at least one line")
}
