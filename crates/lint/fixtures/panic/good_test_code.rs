//! Passing fixture: unwraps and hard asserts are fine inside test code —
//! a panicking test is exactly how a test fails.

pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles() {
        let parsed: u64 = "21".parse().unwrap();
        assert_eq!(double(parsed), 42);
        let v = vec![1, 2, 3];
        let mid = v[v.len() / 2];
        assert_eq!(mid, 2);
        if false {
            panic!("unreachable in practice");
        }
    }
}
