//! Passing fixture: library code that propagates or defaults instead of
//! panicking, and indexes only through checked accessors.

pub fn head_plus_tail(values: &[u64]) -> Option<u64> {
    let first = values.first()?;
    let last = values.last()?;
    Some(first + last)
}

pub fn parse_port(text: &str) -> u16 {
    text.parse().unwrap_or(0)
}

pub fn window(values: &[u64], at: usize) -> &[u64] {
    values.get(at..at + 2).unwrap_or(&[])
}
