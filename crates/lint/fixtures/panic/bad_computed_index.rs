//! Failing fixture: computed subscripts are the classic off-by-one panic.
//! `v[i + 1]` with `i == v.len() - 1` aborts the whole run.

pub fn neighbour_sum(v: &[u64], i: usize) -> u64 {
    v[i] + v[i + 1]
}

pub fn wrap_around(v: &[u64], i: usize) -> u64 {
    v[(i + 1) % v.len()]
}
