//! Failing fixture: `thread_rng` is ambient, OS-seeded randomness — the exact
//! thing a fixed-seed simulation must never touch.

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
