//! Failing fixture: reading the host clock inside simulation logic couples
//! results to the machine the run happened on.

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, u64) {
    let started = Instant::now();
    let wall = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (started, wall)
}
