//! Failing fixture: HashMap/HashSet in sim-facing code without a waiver.
//! RandomState hashing makes `for (k, v) in &self.members` visit nodes in a
//! different order every process run, which leaks into placement decisions.

use std::collections::{HashMap, HashSet};

pub struct Membership {
    members: HashMap<u64, u32>,
    suspected: HashSet<u64>,
}

impl Membership {
    pub fn first_suspect(&self) -> Option<u64> {
        self.suspected.iter().next().copied()
    }
}
