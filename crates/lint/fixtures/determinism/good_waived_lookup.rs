//! Passing fixture: a HashMap whose iteration order is never observed may
//! stay, but only behind an explicit, justified waiver.

use std::collections::HashMap; // lint:allow(unordered-collection) -- lookup-only cache: iteration order never observed

pub struct Cache {
    by_id: HashMap<u64, String>, // lint:allow(unordered-collection) -- lookup-only cache: iteration order never observed
}

impl Cache {
    pub fn get(&self, id: u64) -> Option<&str> {
        self.by_id.get(&id).map(String::as_str)
    }
}
