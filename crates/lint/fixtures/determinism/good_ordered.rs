//! Passing fixture: ordered collections and seeded randomness only.
//! Iteration order of every map here is the key order, so a fixed seed
//! reproduces byte-identical reports.

use std::collections::{BTreeMap, BTreeSet};

pub struct Tracker {
    per_node: BTreeMap<u64, u32>,
    dirty: BTreeSet<u64>,
}

impl Tracker {
    pub fn bump(&mut self, node: u64) {
        *self.per_node.entry(node).or_insert(0) += 1;
        self.dirty.insert(node);
    }

    pub fn total(&self) -> u32 {
        self.per_node.values().sum()
    }
}
