//! Fixture corpus for the four rule families.  Each family has at least two
//! fixtures the linter must pass clean and two it must flag — so a regression
//! in either direction (missed hazard, or a false positive on idiomatic code)
//! fails this suite before it reaches the workspace gate.

use peerstripe_lint::diag::Report;
use peerstripe_lint::lint_file;
use peerstripe_lint::manifest;
use peerstripe_lint::rules::layering::{check_layering, LayerPolicy};
use peerstripe_lint::rules::FileCtx;

/// Lint one fixture's source text under a given crate context.
fn lint(name: &str, src: &str, sim_facing: bool) -> Report {
    let ctx = FileCtx {
        crate_name: "fixture-crate".to_string(),
        sim_facing,
        wall_clock_exempt: false,
    };
    let mut report = Report::default();
    lint_file(name, src, &ctx, &mut report);
    report.sort();
    report
}

fn rules_of(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

fn count(report: &Report, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_passes_ordered_collections() {
    let report = lint(
        "good_ordered.rs",
        include_str!("../fixtures/determinism/good_ordered.rs"),
        true,
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn determinism_passes_waived_lookup_only_hashmap() {
    let report = lint(
        "good_waived_lookup.rs",
        include_str!("../fixtures/determinism/good_waived_lookup.rs"),
        true,
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    assert_eq!(report.waived.len(), 2, "both HashMap mentions are waived");
    assert!(report.waived.iter().all(|w| !w.reason.is_empty()));
}

#[test]
fn determinism_flags_hash_iteration() {
    let report = lint(
        "bad_hash_iteration.rs",
        include_str!("../fixtures/determinism/bad_hash_iteration.rs"),
        true,
    );
    assert!(
        count(&report, "unordered-collection") >= 2,
        "HashMap and HashSet both flagged: {:?}",
        report.findings
    );
}

#[test]
fn determinism_ignores_hashmap_outside_sim_facing_crates() {
    // The same source in a non-sim-facing crate (e.g. the report renderer)
    // is legal: only crates whose state feeds results are restricted.
    let report = lint(
        "bad_hash_iteration.rs",
        include_str!("../fixtures/determinism/bad_hash_iteration.rs"),
        false,
    );
    assert_eq!(count(&report, "unordered-collection"), 0);
}

#[test]
fn determinism_flags_wall_clock_reads() {
    let report = lint(
        "bad_wall_clock.rs",
        include_str!("../fixtures/determinism/bad_wall_clock.rs"),
        true,
    );
    assert!(
        count(&report, "wall-clock") >= 2,
        "Instant::now and SystemTime::now both flagged: {:?}",
        report.findings
    );
}

#[test]
fn determinism_flags_ambient_rng() {
    let report = lint(
        "bad_ambient_rng.rs",
        include_str!("../fixtures/determinism/bad_ambient_rng.rs"),
        true,
    );
    assert!(rules_of(&report).contains(&"ambient-rng"));
}

// ---------------------------------------------------------------- panic-audit

#[test]
fn panic_audit_passes_propagating_code() {
    let report = lint(
        "good_handled.rs",
        include_str!("../fixtures/panic/good_handled.rs"),
        false,
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn panic_audit_passes_test_code() {
    let report = lint(
        "good_test_code.rs",
        include_str!("../fixtures/panic/good_test_code.rs"),
        false,
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn panic_audit_flags_unwrap_expect_and_panic_macro() {
    let report = lint(
        "bad_unwrap.rs",
        include_str!("../fixtures/panic/bad_unwrap.rs"),
        false,
    );
    assert!(
        count(&report, "panic") >= 3,
        "unwrap, panic! and expect all flagged: {:?}",
        report.findings
    );
}

#[test]
fn panic_audit_flags_computed_indices() {
    let report = lint(
        "bad_computed_index.rs",
        include_str!("../fixtures/panic/bad_computed_index.rs"),
        false,
    );
    assert!(
        count(&report, "slice-index") >= 2,
        "v[i + 1] and v[(i + 1) % len] flagged, plain v[i] is not: {:?}",
        report.findings
    );
}

// --------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_audit_passes_documented_block() {
    let report = lint(
        "good_safety_comment.rs",
        include_str!("../fixtures/unsafe/good_safety_comment.rs"),
        false,
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn unsafe_audit_passes_safe_code() {
    let report = lint(
        "good_no_unsafe.rs",
        include_str!("../fixtures/unsafe/good_no_unsafe.rs"),
        false,
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn unsafe_audit_flags_undocumented_block() {
    let report = lint(
        "bad_no_safety_comment.rs",
        include_str!("../fixtures/unsafe/bad_no_safety_comment.rs"),
        false,
    );
    assert!(rules_of(&report).contains(&"unsafe-no-safety"));
}

#[test]
fn unsafe_audit_flags_comment_too_far_away() {
    let report = lint(
        "bad_stale_safety_comment.rs",
        include_str!("../fixtures/unsafe/bad_stale_safety_comment.rs"),
        false,
    );
    assert!(
        rules_of(&report).contains(&"unsafe-no-safety"),
        "a SAFETY comment 8 lines up does not document this block: {:?}",
        report.findings
    );
}

// ------------------------------------------------------------------- layering

fn manifests(entries: &[(&str, &str)]) -> Vec<(String, manifest::Manifest)> {
    entries
        .iter()
        .map(|(path, text)| (path.to_string(), manifest::parse(text)))
        .collect()
}

#[test]
fn layering_passes_allowed_dag() {
    let policy = LayerPolicy::new("fx-")
        .allow("fx-app", &["fx-util"])
        .allow("fx-util", &[]);
    let set = manifests(&[
        (
            "good_dag/app.toml",
            include_str!("../fixtures/layering/good_dag/app.toml"),
        ),
        (
            "good_dag/util.toml",
            include_str!("../fixtures/layering/good_dag/util.toml"),
        ),
    ]);
    let findings = check_layering(&set, &policy);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn layering_passes_dev_dependency_back_edges() {
    let policy = LayerPolicy::new("fx-")
        .allow("fx-app", &[])
        .allow("fx-testkit", &[]);
    let set = manifests(&[
        (
            "good_devdep/app.toml",
            include_str!("../fixtures/layering/good_devdep/app.toml"),
        ),
        (
            "good_devdep/testkit.toml",
            include_str!("../fixtures/layering/good_devdep/testkit.toml"),
        ),
    ]);
    let findings = check_layering(&set, &policy);
    assert!(findings.is_empty(), "dev-deps are exempt: {findings:?}");
}

#[test]
fn layering_flags_forbidden_upward_edge() {
    let policy = LayerPolicy::new("fx-")
        .allow("fx-app", &["fx-util"])
        .allow("fx-util", &[]);
    let set = manifests(&[
        (
            "bad_forbidden/util.toml",
            include_str!("../fixtures/layering/bad_forbidden/util.toml"),
        ),
        (
            "bad_forbidden/app.toml",
            include_str!("../fixtures/layering/bad_forbidden/app.toml"),
        ),
    ]);
    let findings = check_layering(&set, &policy);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "layering");
    assert!(findings[0].message.contains("must not depend on `fx-app`"));
    assert_eq!(findings[0].path, "bad_forbidden/util.toml");
}

#[test]
fn layering_flags_cycles_of_individually_allowed_edges() {
    // A policy bug allows both edges; only the cycle pass catches the loop.
    let policy = LayerPolicy::new("fx-")
        .allow("fx-a", &["fx-b"])
        .allow("fx-b", &["fx-a"]);
    let set = manifests(&[
        (
            "bad_cycle/a.toml",
            include_str!("../fixtures/layering/bad_cycle/a.toml"),
        ),
        (
            "bad_cycle/b.toml",
            include_str!("../fixtures/layering/bad_cycle/b.toml"),
        ),
    ]);
    let findings = check_layering(&set, &policy);
    assert!(
        findings.iter().any(|f| f.message.contains("cycle")),
        "{findings:?}"
    );
}

// -------------------------------------------------- whole-workspace smoke run

#[test]
fn workspace_lints_clean_from_the_fixture_suite_too() {
    // The CI gate runs the binary; this keeps `cargo test -p peerstripe-lint`
    // equivalent evidence.  CARGO_MANIFEST_DIR = crates/lint.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root two levels up")
        .to_path_buf();
    let report = peerstripe_lint::run_workspace(&root).expect("lint run succeeds");
    assert!(
        report.is_clean(),
        "workspace must lint clean:\n{}",
        report.render_text(false)
    );
    assert!(report.files_checked > 50, "whole tree was walked");
}
