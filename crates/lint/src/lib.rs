//! `peerstripe-lint` (`repro lint`) — the workspace's determinism &
//! panic-safety linter.
//!
//! Every number this repo reports is a fixed-seed claim; this crate is the
//! static pass that keeps it that way.  It lexes the workspace's own source
//! (no `syn`, no network, std only), then runs four rule families:
//!
//! * **determinism** — `HashMap`/`HashSet` in sim-facing crates
//!   (`unordered-collection`), `Instant::now`/`SystemTime::now` outside
//!   measurement code (`wall-clock`), `thread_rng` anywhere (`ambient-rng`);
//! * **panic-audit** — `unwrap`/`expect`/`panic!`-family macros (`panic`) and
//!   computed slice indices (`slice-index`) in library code;
//! * **layering** — the workspace crate DAG, enforced from `Cargo.toml`
//!   metadata (`layering`);
//! * **unsafe-audit** — `unsafe` without a `// SAFETY:` comment
//!   (`unsafe-no-safety`).
//!
//! Individual occurrences are waived inline:
//!
//! ```text
//! // lint:allow(unordered-collection) -- lookup-only: iteration order never observed
//! ```
//!
//! Waivers require a reason (`waiver-missing-reason`) and must suppress at
//! least one finding (`waiver-unused`), so the waiver list stays an honest,
//! reviewable inventory of every known hazard.

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod source;

use diag::{Finding, Report, Waived};
use rules::FileCtx;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Crates whose state feeds simulation results: unordered collections are
/// forbidden here (`erasure` works on byte math, `experiments`/`bench` render
/// reports from already-deterministic inputs, `lint` is this crate).
const SIM_FACING_CRATES: &[&str] = &[
    "peerstripe-core",
    "peerstripe-sim",
    "peerstripe-repair",
    "peerstripe-placement",
    "peerstripe-overlay",
    "peerstripe-multicast",
    "peerstripe-gridsim",
    "peerstripe-baselines",
    "peerstripe-trace",
    "peerstripe-telemetry",
];

/// Files allowed to read the host clock: encode/decode throughput measurement
/// and the perf-snapshot helper.  (The criterion benches under
/// `crates/bench/benches/` are not linted at all — only `src/` trees are.)
const WALL_CLOCK_EXEMPT: &[&str] = &[
    "crates/bench/",
    "crates/erasure/src/measure.rs",
    "crates/experiments/src/coding.rs",
    "crates/experiments/src/bench_snapshot.rs",
    "crates/telemetry/src/profile.rs",
];

/// Options for a lint run.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Also list waived findings in text output.
    pub verbose: bool,
}

/// Lint the workspace rooted at `root` (the directory holding the top-level
/// `Cargo.toml`).  Returns the sorted report; IO problems come back as `Err`.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let root_manifest_path = root.join("Cargo.toml");
    let root_manifest = read(&root_manifest_path)?;
    let root_toml = manifest::parse(&root_manifest);
    if root_toml.members.is_empty() {
        return Err(format!(
            "{} has no [workspace] members — is this the workspace root?",
            root_manifest_path.display()
        ));
    }

    let mut report = Report::default();
    let mut manifests: Vec<(String, manifest::Manifest)> = Vec::new();
    // The root manifest also declares the facade package.
    manifests.push(("Cargo.toml".to_string(), root_toml.clone()));

    let mut source_dirs: Vec<(String, PathBuf)> = Vec::new(); // (crate name, src dir)
    if !root_toml.package_name.is_empty() {
        source_dirs.push((root_toml.package_name.clone(), root.join("src")));
    }

    for member in &root_toml.members {
        if member.starts_with("vendor/") {
            continue; // vendored stand-ins are not ours to lint
        }
        let member_manifest_path = root.join(member).join("Cargo.toml");
        let member_toml = manifest::parse(&read(&member_manifest_path)?);
        let rel = format!("{member}/Cargo.toml");
        source_dirs.push((
            member_toml.package_name.clone(),
            root.join(member).join("src"),
        ));
        manifests.push((rel, member_toml));
    }

    report.findings.extend(rules::layering::check_layering(
        &manifests,
        &rules::layering::builtin_policy(),
    ));

    for (crate_name, dir) in source_dirs {
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = rel_path(root, &path);
            let ctx = FileCtx {
                sim_facing: SIM_FACING_CRATES.contains(&crate_name.as_str()),
                wall_clock_exempt: WALL_CLOCK_EXEMPT.iter().any(|p| rel.starts_with(p)),
                crate_name: crate_name.clone(),
            };
            let text = read(&path)?;
            lint_file(&rel, &text, &ctx, &mut report);
        }
    }

    report.sort();
    Ok(report)
}

/// Lint a single file's source text into `report` (exposed for fixture tests).
pub fn lint_file(rel_path: &str, text: &str, ctx: &FileCtx, report: &mut Report) {
    let file = SourceFile::parse(rel_path, text);
    let mut raw = Vec::new();
    for rule in rules::token_rules() {
        rule(&file, ctx, &mut raw);
    }

    let mut ledger = source::WaiverLedger::default();
    for finding in raw {
        match file.waiver_for(finding.rule, finding.line) {
            Some(idx) => {
                ledger.mark_used(rel_path, idx);
                let reason = file
                    .waivers
                    .get(idx)
                    .map(|w| w.reason.clone())
                    .unwrap_or_default();
                report.waived.push(Waived {
                    rule: finding.rule,
                    path: rel_path.to_string(),
                    line: finding.line,
                    reason,
                });
            }
            None => report.findings.push(Finding {
                rule: finding.rule,
                path: rel_path.to_string(),
                line: finding.line,
                message: finding.message,
            }),
        }
    }

    // Waiver hygiene: every waiver needs a reason and must earn its keep.
    for (idx, waiver) in file.waivers.iter().enumerate() {
        if waiver.reason.is_empty() {
            report.findings.push(Finding {
                rule: "waiver-missing-reason",
                path: rel_path.to_string(),
                line: waiver.line,
                message: format!(
                    "waiver for ({}) has no `-- reason`: justify it or remove it",
                    waiver.rules.join(", ")
                ),
            });
        }
        if !ledger.is_used(rel_path, idx) {
            report.findings.push(Finding {
                rule: "waiver-unused",
                path: rel_path.to_string(),
                line: waiver.line,
                message: format!(
                    "waiver for ({}) suppresses nothing on line {}: stale after a fix?",
                    waiver.rules.join(", "),
                    waiver.covers
                ),
            });
        }
    }
    report.files_checked += 1;
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalise to `/` so diagnostics and waiver paths are OS-independent.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locate the workspace root: walk up from `start` to the first `Cargo.toml`
/// containing a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest_path = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest_path) {
            if !manifest::parse(&text).members.is_empty() {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_ctx() -> FileCtx {
        FileCtx {
            crate_name: "peerstripe-core".into(),
            sim_facing: true,
            wall_clock_exempt: false,
        }
    }

    #[test]
    fn waived_finding_moves_to_waived_list() {
        let mut report = Report::default();
        let src =
            "use std::collections::HashMap; // lint:allow(unordered-collection) -- lookup only\n";
        lint_file("x.rs", src, &sim_ctx(), &mut report);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.waived.len(), 1);
        assert_eq!(report.waived[0].reason, "lookup only");
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let mut report = Report::default();
        let src = "use std::collections::HashMap; // lint:allow(unordered-collection)\n";
        lint_file("x.rs", src, &sim_ctx(), &mut report);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "waiver-missing-reason");
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let mut report = Report::default();
        let src = "// lint:allow(panic) -- not actually needed\nlet x = 1;\n";
        lint_file("x.rs", src, &FileCtx::default(), &mut report);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "waiver-unused");
    }

    #[test]
    fn wrong_rule_waiver_does_not_suppress() {
        let mut report = Report::default();
        let src = "use std::collections::HashMap; // lint:allow(panic) -- wrong rule\n";
        lint_file("x.rs", src, &sim_ctx(), &mut report);
        // The HashMap finding survives AND the waiver is unused.
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"unordered-collection"));
        assert!(rules.contains(&"waiver-unused"));
    }
}
