//! Findings and report rendering (human text and machine JSON).

use std::fmt::Write as _;

/// The four rule families, used to group output and fixture tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    Determinism,
    PanicAudit,
    Layering,
    UnsafeAudit,
    /// Meta findings about the waiver mechanism itself.
    Waiver,
}

impl Family {
    pub fn as_str(self) -> &'static str {
        match self {
            Family::Determinism => "determinism",
            Family::PanicAudit => "panic-audit",
            Family::Layering => "layering",
            Family::UnsafeAudit => "unsafe-audit",
            Family::Waiver => "waiver",
        }
    }
}

/// The family a rule id belongs to.
pub fn family_of(rule: &str) -> Family {
    match rule {
        "unordered-collection" | "wall-clock" | "ambient-rng" => Family::Determinism,
        "panic" | "slice-index" => Family::PanicAudit,
        "layering" => Family::Layering,
        "unsafe-no-safety" => Family::UnsafeAudit,
        _ => Family::Waiver,
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// A finding that was suppressed by a waiver (reported for transparency).
#[derive(Debug, Clone)]
pub struct Waived {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub reason: String,
}

/// The full result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub waived: Vec<Waived>,
    pub files_checked: usize,
}

impl Report {
    /// Deterministic output order: path, then line, then rule.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.waived
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: [{}/{}] {}",
                f.path,
                f.line,
                family_of(f.rule).as_str(),
                f.rule,
                f.message
            );
        }
        if verbose {
            for w in &self.waived {
                let _ = writeln!(
                    out,
                    "{}:{}: waived [{}] -- {}",
                    w.path, w.line, w.rule, w.reason
                );
            }
        }
        let _ = writeln!(
            out,
            "repro-lint: {} file(s) checked, {} finding(s), {} waived",
            self.files_checked,
            self.findings.len(),
            self.waived.len()
        );
        out
    }

    /// Machine-readable rendering (stable field order, sorted findings).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"files_checked\":{},", self.files_checked);
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"family\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(family_of(f.rule).as_str()),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            );
        }
        out.push_str("],\"waived\":[");
        for (i, w) in self.waived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{}}}",
                json_str(w.rule),
                json_str(&w.path),
                w.line,
                json_str(&w.reason)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_sorted() {
        let mut report = Report {
            findings: vec![
                Finding {
                    rule: "panic",
                    path: "b.rs".into(),
                    line: 2,
                    message: "say \"no\"".into(),
                },
                Finding {
                    rule: "wall-clock",
                    path: "a.rs".into(),
                    line: 9,
                    message: "tick".into(),
                },
            ],
            waived: Vec::new(),
            files_checked: 2,
        };
        report.sort();
        assert_eq!(report.findings[0].path, "a.rs");
        let json = report.render_json();
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"families\":") || json.contains("\"family\":\"determinism\""));
        assert!(!report.is_clean());
    }

    #[test]
    fn family_mapping_is_total() {
        assert_eq!(family_of("unordered-collection"), Family::Determinism);
        assert_eq!(family_of("slice-index"), Family::PanicAudit);
        assert_eq!(family_of("layering"), Family::Layering);
        assert_eq!(family_of("unsafe-no-safety"), Family::UnsafeAudit);
        assert_eq!(family_of("waiver-unused"), Family::Waiver);
    }
}
