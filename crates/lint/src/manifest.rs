//! Just-enough `Cargo.toml` parsing for the layering rule.
//!
//! The linter needs three things from a manifest: the package name, the
//! workspace member list (root manifest only), and the names of the
//! dependencies in each dependency section with the line they were declared
//! on.  A full TOML parser would be overkill (and would mean a dependency);
//! cargo's own manifests are line-oriented enough for a section-tracking
//! scan.

/// One parsed dependency declaration.
#[derive(Debug, Clone)]
pub struct Dep {
    pub name: String,
    pub line: u32,
    /// Section it was declared in: "dependencies", "dev-dependencies", ...
    pub section: String,
}

/// The slice of a `Cargo.toml` the linter cares about.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[package] name`, empty for a virtual manifest.
    pub package_name: String,
    /// `[workspace] members`, in declaration order.
    pub members: Vec<String>,
    pub deps: Vec<Dep>,
}

/// Parse manifest text.  Unknown sections are skipped; the parser never fails
/// (a malformed manifest simply yields fewer facts, and `cargo` itself will
/// complain long before the linter matters).
pub fn parse(text: &str) -> Manifest {
    let mut manifest = Manifest::default();
    let mut section = String::new();
    let mut in_members_array = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }

        if in_members_array {
            for part in line.split(',') {
                let name = part.trim().trim_matches(|c| c == '"' || c == ']');
                if !name.is_empty() {
                    manifest.members.push(name.to_string());
                }
            }
            if line.contains(']') {
                in_members_array = false;
            }
            continue;
        }

        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }

        let Some((key_part, value)) = line.split_once('=') else {
            continue;
        };
        let key = key_part.trim();
        let value = value.trim();

        match section.as_str() {
            "package" if key == "name" => {
                manifest.package_name = value.trim_matches('"').to_string();
            }
            "workspace" if key == "members" => {
                // members = [ "a", "b" ]  or the opening of a multi-line array.
                let inner = value.trim_start_matches('[');
                for part in inner.split(',') {
                    let name = part.trim().trim_matches(|c| c == '"' || c == ']');
                    if !name.is_empty() {
                        manifest.members.push(name.to_string());
                    }
                }
                in_members_array = !value.contains(']');
            }
            "dependencies" | "dev-dependencies" | "build-dependencies" => {
                manifest.deps.push(Dep {
                    // `foo = ...` or `foo.workspace = true`
                    name: key.split('.').next().unwrap_or(key).trim().to_string(),
                    line: line_no,
                    section: section.clone(),
                });
            }
            _ => {
                // `[target.'cfg(..)'.dependencies]` and friends are absent in
                // this workspace; ignore anything else.
            }
        }
    }
    manifest
}

/// Strip a `#` comment, respecting `"` strings (paths never contain `#` here).
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_members_and_deps() {
        let text = r#"
[workspace]
members = [
    "crates/a",
    "crates/b", # trailing comment
]

[package]
name = "demo"

[dependencies]
peerstripe-sim = { path = "../sim" }
peerstripe-core.workspace = true
serde = { workspace = true }

[dev-dependencies]
proptest.workspace = true
"#;
        let m = parse(text);
        assert_eq!(m.package_name, "demo");
        assert_eq!(m.members, vec!["crates/a", "crates/b"]);
        let names: Vec<&str> = m.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["peerstripe-sim", "peerstripe-core", "serde", "proptest"]
        );
        assert_eq!(m.deps[3].section, "dev-dependencies");
        assert!(m.deps[0].line > 0);
    }

    #[test]
    fn inline_members_array() {
        let m = parse("[workspace]\nmembers = [\"x\", \"y\"]\n");
        assert_eq!(m.members, vec!["x", "y"]);
    }
}
