//! A minimal Rust lexer for static analysis.
//!
//! The linter does not need a parse tree — every rule it ships is a pattern
//! over the token stream plus the comment side-channel.  This lexer therefore
//! does exactly one job well: split source text into identifiers, punctuation,
//! literals, and lifetimes, with **comments and string contents stripped out of
//! the token stream** (so `"HashMap"` in a doc string can never trip the
//! determinism rule) but comments preserved separately (so waivers and
//! `// SAFETY:` justifications stay visible to the rules).
//!
//! Handled: line and nested block comments, string/char/byte/raw-string
//! literals with escapes, raw identifiers, lifetimes vs char literals, numeric
//! literals with suffixes.  Unterminated constructs lex to the end of file
//! rather than erroring — a linter must degrade gracefully on mid-edit code.

/// One lexed token kind.  String-like literals carry no text on purpose:
/// nothing inside a literal is the linter's business.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the rules decide which names matter).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Integer literal (any base, suffix included).
    Int,
    /// Float literal.
    Float,
    /// String, raw-string, byte-string, or char literal.
    Str,
    /// Lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// A token plus the 1-indexed line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub line: u32,
    pub tok: Tok,
}

/// A comment (line or block) with its text and line span.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
    /// True for `//` comments (waivers are only honoured in these).
    pub is_line: bool,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex a whole source file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let text = cur.eat_while(|c| c != '\n');
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text,
                    is_line: true,
                });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let text = block_comment(&mut cur);
                out.comments.push(Comment {
                    line,
                    end_line: cur.line,
                    text,
                    is_line: false,
                });
            }
            '"' => {
                cur.bump();
                string_body(&mut cur);
                out.tokens.push(Token {
                    line,
                    tok: Tok::Str,
                });
            }
            '\'' => {
                lex_quote(&mut cur, line, &mut out.tokens);
            }
            _ if c.is_ascii_digit() => {
                number(&mut cur, line, &mut out.tokens);
            }
            _ if is_ident_start(c) => {
                let ident = cur.eat_while(is_ident_continue);
                ident_or_prefixed_literal(&mut cur, ident, line, &mut out.tokens);
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct(c),
                });
            }
        }
    }
    out
}

/// Consume a (possibly nested) block comment body; the opening `/*` is gone.
fn block_comment(cur: &mut Cursor) -> String {
    let mut depth = 1usize;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '*' && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            depth += 1;
            text.push_str("/*");
        } else {
            cur.bump();
            text.push(c);
        }
    }
    text
}

/// Consume a string body after the opening `"`, honouring `\` escapes.
fn string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consume a raw-string body after the hashes count is known: `"...."###`.
fn raw_string_body(cur: &mut Cursor, hashes: usize) {
    // The opening quote has been consumed by the caller.
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
        }
    }
}

/// After a `'`: decide between a char literal and a lifetime.
fn lex_quote(cur: &mut Cursor, line: u32, tokens: &mut Vec<Token>) {
    cur.bump(); // the quote
    match (cur.peek(), cur.peek_at(1)) {
        // '\n', '\'', '\\' ... — always a char literal.
        (Some('\\'), _) => {
            cur.bump();
            cur.bump(); // the escaped char
            cur.eat_while(|c| c != '\''); // e.g. '\u{1F600}'
            cur.bump(); // closing quote
            tokens.push(Token {
                line,
                tok: Tok::Str,
            });
        }
        // 'x' — a one-char literal closed immediately.
        (Some(_), Some('\'')) => {
            cur.bump();
            cur.bump();
            tokens.push(Token {
                line,
                tok: Tok::Str,
            });
        }
        // 'ident — a lifetime (no closing quote follows).
        (Some(c), _) if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            tokens.push(Token {
                line,
                tok: Tok::Lifetime,
            });
        }
        _ => {
            // Stray quote; emit as punctuation so the stream stays aligned.
            tokens.push(Token {
                line,
                tok: Tok::Punct('\''),
            });
        }
    }
}

/// Lex a numeric literal starting at a digit.
fn number(cur: &mut Cursor, line: u32, tokens: &mut Vec<Token>) {
    let mut is_float = false;
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    // `1.5` is a float; `1..n` is an int followed by a range; `1.max(2)` is an
    // int followed by a method call.
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    tokens.push(Token {
        line,
        tok: if is_float { Tok::Float } else { Tok::Int },
    });
}

/// An identifier was lexed; check whether it actually prefixes a raw/byte
/// string (`r"..."`, `br#"..."#`, `b"..."`, `c"..."`) or raw ident (`r#name`).
fn ident_or_prefixed_literal(cur: &mut Cursor, ident: String, line: u32, tokens: &mut Vec<Token>) {
    let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr");
    let byte_capable = matches!(ident.as_str(), "b" | "c");
    match cur.peek() {
        Some('"') if raw_capable || byte_capable => {
            cur.bump();
            if raw_capable {
                raw_string_body(cur, 0);
            } else {
                string_body(cur);
            }
            tokens.push(Token {
                line,
                tok: Tok::Str,
            });
        }
        Some('\'') if ident == "b" => {
            lex_quote(cur, line, tokens);
            // Rewrite whatever lex_quote decided: b'x' is always a literal.
            if let Some(last) = tokens.last_mut() {
                last.tok = Tok::Str;
            }
        }
        Some('#') if raw_capable => {
            let mut hashes = 0usize;
            while cur.peek() == Some('#') {
                cur.bump();
                hashes += 1;
            }
            if cur.peek() == Some('"') {
                cur.bump();
                raw_string_body(cur, hashes);
                tokens.push(Token {
                    line,
                    tok: Tok::Str,
                });
            } else if ident == "r" && hashes == 1 && cur.peek().is_some_and(is_ident_start) {
                // Raw identifier r#type: emit the ident itself.
                let raw = cur.eat_while(is_ident_continue);
                tokens.push(Token {
                    line,
                    tok: Tok::Ident(raw),
                });
            } else {
                // `r ##` of something else: keep the pieces.
                tokens.push(Token {
                    line,
                    tok: Tok::Ident(ident),
                });
                for _ in 0..hashes {
                    tokens.push(Token {
                        line,
                        tok: Tok::Punct('#'),
                    });
                }
            }
        }
        _ => {
            tokens.push(Token {
                line,
                tok: Tok::Ident(ident),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* HashSet in a block /* nested */ still hidden */
            let x = "HashMap::new()";
            let y = r#"HashSet"#;
            let z = b"unsafe";
            let c = 'H';
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashSet".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"BTreeMap".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1); // just 'x' — `str` lexes as an ident
    }

    #[test]
    fn numbers_and_ranges() {
        let lexed = lex("let v = a[0..10]; let f = 1.5f64; let m = 1_000;");
        let ints = lexed.tokens.iter().filter(|t| t.tok == Tok::Int).count();
        let floats = lexed.tokens.iter().filter(|t| t.tok == Tok::Float).count();
        assert_eq!(ints, 3);
        assert_eq!(floats, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lexed = lex(r#"let s = "a\"HashMap\""; let t = x;"#);
        let ids = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(ids, vec!["let", "s", "let", "t", "x"]);
    }
}
