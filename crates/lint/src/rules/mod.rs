//! The rule passes.
//!
//! Each token rule is a pure function from a lexed [`SourceFile`] (plus a
//! little per-file context) to raw findings; waiver application happens in one
//! place, in `lib.rs`, so no rule can forget it.  The layering rule instead
//! consumes parsed manifests.

pub mod determinism;
pub mod layering;
pub mod panic_audit;
pub mod unsafe_audit;

/// Per-file facts the token rules branch on.
#[derive(Debug, Clone, Default)]
pub struct FileCtx {
    /// Name of the crate the file belongs to (e.g. `peerstripe-core`).
    pub crate_name: String,
    /// Simulation-state crate: unordered collections are forbidden here.
    pub sim_facing: bool,
    /// Measurement code: allowed to read the wall clock.
    pub wall_clock_exempt: bool,
}

/// A finding before waiver application.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

impl RawFinding {
    pub fn new(rule: &'static str, line: u32, message: String) -> Self {
        RawFinding {
            rule,
            line,
            message,
        }
    }
}

/// Every token rule, in the order they run.
pub fn token_rules() -> Vec<fn(&crate::source::SourceFile, &FileCtx, &mut Vec<RawFinding>)> {
    vec![
        determinism::check_unordered_collections,
        determinism::check_wall_clock,
        determinism::check_ambient_rng,
        panic_audit::check_panics,
        panic_audit::check_slice_index,
        unsafe_audit::check_unsafe,
    ]
}
