//! Layering rule: the workspace crate DAG is an architectural decision, and
//! this rule makes it executable.  Each internal (`peerstripe-*`) dependency
//! edge must be declared in the policy table, and the actual graph must stay
//! acyclic — so "core grew a dependency on repair" fails CI instead of
//! surfacing three refactors later.
//!
//! Dev-dependencies are exempt: they never ship in the library graph and
//! cargo already rejects dev-cycles that matter.

use crate::diag::Finding;
use crate::manifest::Manifest;
use std::collections::{BTreeMap, BTreeSet};

/// The allowed internal dependency edges, crate name → permitted deps.
#[derive(Debug, Clone, Default)]
pub struct LayerPolicy {
    pub allowed: BTreeMap<String, BTreeSet<String>>,
    /// Prefix that marks a dependency as internal (e.g. `peerstripe-`).
    pub internal_prefix: String,
}

impl LayerPolicy {
    pub fn new(internal_prefix: &str) -> Self {
        LayerPolicy {
            allowed: BTreeMap::new(),
            internal_prefix: internal_prefix.to_string(),
        }
    }

    pub fn allow(mut self, krate: &str, deps: &[&str]) -> Self {
        self.allowed
            .entry(krate.to_string())
            .or_default()
            .extend(deps.iter().map(|d| d.to_string()));
        self
    }
}

/// The layering policy for **this** workspace.  `sim` is the foundation
/// (nothing internal below it); `core` may use placement's traits but never
/// the maintenance engine; `experiments` is the top of the stack.
pub fn builtin_policy() -> LayerPolicy {
    LayerPolicy::new("peerstripe-")
        .allow("peerstripe-sim", &[])
        // Telemetry sits below every sim crate: anything sim-facing may use
        // it, and it depends only on the vendored serde.
        .allow("peerstripe-telemetry", &[])
        .allow("peerstripe-trace", &["peerstripe-sim"])
        .allow("peerstripe-overlay", &["peerstripe-sim"])
        .allow(
            "peerstripe-erasure",
            &["peerstripe-sim", "peerstripe-telemetry"],
        )
        .allow("peerstripe-lint", &[])
        .allow(
            "peerstripe-multicast",
            &["peerstripe-sim", "peerstripe-overlay"],
        )
        .allow(
            "peerstripe-placement",
            &["peerstripe-sim", "peerstripe-overlay", "peerstripe-trace"],
        )
        .allow(
            "peerstripe-core",
            &[
                "peerstripe-sim",
                "peerstripe-overlay",
                "peerstripe-erasure",
                "peerstripe-trace",
                "peerstripe-placement",
                "peerstripe-telemetry",
            ],
        )
        .allow(
            "peerstripe-repair",
            &[
                "peerstripe-sim",
                "peerstripe-overlay",
                "peerstripe-erasure",
                "peerstripe-trace",
                "peerstripe-placement",
                "peerstripe-core",
                "peerstripe-telemetry",
            ],
        )
        .allow(
            "peerstripe-baselines",
            &["peerstripe-sim", "peerstripe-trace", "peerstripe-core"],
        )
        .allow(
            "peerstripe-gridsim",
            &[
                "peerstripe-sim",
                "peerstripe-trace",
                "peerstripe-core",
                "peerstripe-baselines",
            ],
        )
        // The networked deployment path: speaks TCP to real daemons but
        // reuses the cluster-facing traits (core/placement) and the metrics
        // registry; it must never reach into the repair engine or the
        // experiment drivers.
        .allow(
            "peerstripe-net",
            &[
                "peerstripe-sim",
                "peerstripe-overlay",
                "peerstripe-placement",
                "peerstripe-core",
                "peerstripe-telemetry",
            ],
        )
        .allow(
            "peerstripe-experiments",
            &[
                "peerstripe-sim",
                "peerstripe-trace",
                "peerstripe-overlay",
                "peerstripe-erasure",
                "peerstripe-multicast",
                "peerstripe-placement",
                "peerstripe-core",
                "peerstripe-repair",
                "peerstripe-baselines",
                "peerstripe-gridsim",
                "peerstripe-lint",
                "peerstripe-telemetry",
                "peerstripe-net",
            ],
        )
        .allow(
            "peerstripe-bench",
            &[
                "peerstripe-sim",
                "peerstripe-trace",
                "peerstripe-overlay",
                "peerstripe-erasure",
                "peerstripe-multicast",
                "peerstripe-placement",
                "peerstripe-core",
                "peerstripe-repair",
                "peerstripe-baselines",
                "peerstripe-gridsim",
                "peerstripe-experiments",
                "peerstripe-telemetry",
            ],
        )
        // The facade re-exports everything below it by design.
        .allow(
            "peerstripe",
            &[
                "peerstripe-sim",
                "peerstripe-trace",
                "peerstripe-overlay",
                "peerstripe-erasure",
                "peerstripe-multicast",
                "peerstripe-placement",
                "peerstripe-core",
                "peerstripe-repair",
                "peerstripe-baselines",
                "peerstripe-gridsim",
                "peerstripe-experiments",
                "peerstripe-lint",
                "peerstripe-telemetry",
                "peerstripe-net",
            ],
        )
}

/// Check every member manifest against the policy and the graph for cycles.
/// `manifests` pairs each parsed manifest with the path to report against.
pub fn check_layering(manifests: &[(String, Manifest)], policy: &LayerPolicy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();

    for (path, manifest) in manifests {
        if manifest.package_name.is_empty() {
            continue;
        }
        let name = manifest.package_name.as_str();
        let allowed = policy.allowed.get(name);
        if allowed.is_none() && name.starts_with(&policy.internal_prefix) {
            findings.push(Finding {
                rule: "layering",
                path: path.clone(),
                line: 1,
                message: format!(
                    "crate `{name}` is not in the layering policy: add it to \
                     builtin_policy() with its permitted dependencies"
                ),
            });
        }
        for dep in &manifest.deps {
            if !dep.name.starts_with(&policy.internal_prefix) && dep.name != "peerstripe" {
                continue;
            }
            if dep.section != "dependencies" {
                continue; // dev/build deps are outside the shipped graph
            }
            edges.entry(name).or_default().insert(dep.name.as_str());
            if let Some(allowed) = allowed {
                if !allowed.contains(&dep.name) {
                    findings.push(Finding {
                        rule: "layering",
                        path: path.clone(),
                        line: dep.line,
                        message: format!(
                            "`{name}` must not depend on `{}`: edge is not in the \
                             workspace layering policy",
                            dep.name
                        ),
                    });
                }
            }
        }
    }

    // Cycle detection over the actual edges (colour-marking DFS).
    let mut colours: BTreeMap<&str, u8> = BTreeMap::new();
    let nodes: Vec<&str> = edges.keys().copied().collect();
    for node in nodes {
        let mut stack = Vec::new();
        if let Some(cycle) = dfs_cycle(node, &edges, &mut colours, &mut stack) {
            findings.push(Finding {
                rule: "layering",
                path: "Cargo.toml".to_string(),
                line: 1,
                message: format!("dependency cycle: {}", cycle.join(" -> ")),
            });
        }
    }
    findings
}

fn dfs_cycle<'a>(
    node: &'a str,
    edges: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    colours: &mut BTreeMap<&'a str, u8>,
    stack: &mut Vec<&'a str>,
) -> Option<Vec<String>> {
    match colours.get(node) {
        Some(2) => return None,
        Some(1) => {
            // Found the back edge: report the cycle from the stacked entry.
            let from = stack.iter().position(|n| *n == node).unwrap_or(0);
            let mut cycle: Vec<String> = stack
                .get(from..)
                .unwrap_or(&[])
                .iter()
                .map(|s| s.to_string())
                .collect();
            cycle.push(node.to_string());
            return Some(cycle);
        }
        _ => {}
    }
    colours.insert(node, 1);
    stack.push(node);
    if let Some(deps) = edges.get(node) {
        for dep in deps {
            if let Some(cycle) = dfs_cycle(dep, edges, colours, stack) {
                return Some(cycle);
            }
        }
    }
    stack.pop();
    colours.insert(node, 2);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::parse;

    fn member(path: &str, toml: &str) -> (String, Manifest) {
        (path.to_string(), parse(toml))
    }

    #[test]
    fn allowed_edges_pass() {
        let policy = LayerPolicy::new("peerstripe-")
            .allow("peerstripe-a", &["peerstripe-b"])
            .allow("peerstripe-b", &[]);
        let manifests = vec![
            member(
                "a/Cargo.toml",
                "[package]\nname = \"peerstripe-a\"\n[dependencies]\npeerstripe-b = {}\n",
            ),
            member("b/Cargo.toml", "[package]\nname = \"peerstripe-b\"\n"),
        ];
        assert!(check_layering(&manifests, &policy).is_empty());
    }

    #[test]
    fn forbidden_edge_is_reported_with_its_line() {
        let policy = LayerPolicy::new("peerstripe-")
            .allow("peerstripe-a", &[])
            .allow("peerstripe-b", &[]);
        let manifests = vec![member(
            "a/Cargo.toml",
            "[package]\nname = \"peerstripe-a\"\n[dependencies]\npeerstripe-b = {}\n",
        )];
        let findings = check_layering(&manifests, &policy);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].message.contains("must not depend"));
    }

    #[test]
    fn cycles_are_reported_even_when_each_edge_is_allowed() {
        let policy = LayerPolicy::new("peerstripe-")
            .allow("peerstripe-a", &["peerstripe-b"])
            .allow("peerstripe-b", &["peerstripe-a"]);
        let manifests = vec![
            member(
                "a/Cargo.toml",
                "[package]\nname = \"peerstripe-a\"\n[dependencies]\npeerstripe-b = {}\n",
            ),
            member(
                "b/Cargo.toml",
                "[package]\nname = \"peerstripe-b\"\n[dependencies]\npeerstripe-a = {}\n",
            ),
        ];
        let findings = check_layering(&manifests, &policy);
        assert!(findings.iter().any(|f| f.message.contains("cycle")));
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let policy = LayerPolicy::new("peerstripe-")
            .allow("peerstripe-a", &[])
            .allow("peerstripe-b", &[]);
        let manifests = vec![member(
            "a/Cargo.toml",
            "[package]\nname = \"peerstripe-a\"\n[dev-dependencies]\npeerstripe-b = {}\n",
        )];
        assert!(check_layering(&manifests, &policy).is_empty());
    }

    #[test]
    fn unknown_internal_crate_is_reported() {
        let policy = LayerPolicy::new("peerstripe-");
        let manifests = vec![member(
            "x/Cargo.toml",
            "[package]\nname = \"peerstripe-new\"\n",
        )];
        let findings = check_layering(&manifests, &policy);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not in the layering policy"));
    }

    #[test]
    fn builtin_policy_covers_the_facade() {
        let policy = builtin_policy();
        assert!(policy.allowed.contains_key("peerstripe"));
        assert!(policy.allowed["peerstripe-sim"].is_empty());
        assert!(!policy.allowed["peerstripe-core"].contains("peerstripe-repair"));
    }
}
