//! Unsafe-audit rule: the workspace is currently `unsafe`-free, and this rule
//! pins the bar for any future unsafe (SIMD kernels, arena tricks): every
//! `unsafe` token must sit next to a `// SAFETY:` comment explaining why the
//! invariants hold.

use crate::lexer::Tok;
use crate::rules::{FileCtx, RawFinding};
use crate::source::SourceFile;

/// How many lines above the `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_COMMENT_REACH: u32 = 3;

/// `unsafe-no-safety`: an `unsafe` block/fn/impl without a nearby
/// `// SAFETY:` justification.
pub fn check_unsafe(file: &SourceFile, _ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    for token in &file.tokens {
        if let Tok::Ident(name) = &token.tok {
            if name == "unsafe" && !file.has_safety_comment_near(token.line, SAFETY_COMMENT_REACH) {
                out.push(RawFinding::new(
                    "unsafe-no-safety",
                    token.line,
                    "`unsafe` without a `// SAFETY:` comment within 3 lines: state the \
                     invariant that makes this sound"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<RawFinding> {
        let file = SourceFile::parse("t.rs", src);
        let mut out = Vec::new();
        check_unsafe(&file, &FileCtx::default(), &mut out);
        out
    }

    #[test]
    fn bare_unsafe_flagged() {
        assert_eq!(run("fn f() { unsafe { go() } }").len(), 1);
    }

    #[test]
    fn safety_comment_satisfies_the_rule() {
        let src = "// SAFETY: the buffer is exactly 8 bytes by construction\nunsafe { read(p) }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn safety_comment_too_far_does_not_count() {
        let src = "// SAFETY: stale\n\n\n\n\nunsafe { read(p) }\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn unsafe_in_string_is_invisible() {
        assert!(run("let s = \"unsafe\";").is_empty());
    }
}
