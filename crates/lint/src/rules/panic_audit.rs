//! Panic-audit rules: library code that can take a million-node simulation
//! down with it must justify every panic path.  Test modules are exempt
//! (panicking is how tests fail); library code needs a waiver per site.

use crate::lexer::Tok;
use crate::rules::{FileCtx, RawFinding};
use crate::source::SourceFile;

/// Rust keywords that can directly precede `[` without it being an index
/// expression (`return [..]`, `break [..]`, pattern positions, ...).
const NON_VALUE_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "while", "match", "return", "break", "else", "move", "box",
    "static", "const", "as", "dyn", "impl", "fn", "where", "for", "use", "pub", "crate", "type",
    "struct", "enum", "trait", "mod", "unsafe", "await", "yield", "become",
];

/// `panic`: `.unwrap()` / `.expect(...)` / `panic!` / `unreachable!` /
/// `todo!` / `unimplemented!` in library (non-test) code.
pub fn check_panics(file: &SourceFile, _ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for (i, token) in toks.iter().enumerate() {
        if file.in_test(token.line) {
            continue;
        }
        match &token.tok {
            // `.unwrap(` / `.expect(`
            Tok::Ident(name) if name == "unwrap" || name == "expect" => {
                let after_dot =
                    i > 0 && matches!(toks.get(i - 1).map(|t| &t.tok), Some(Tok::Punct('.')));
                let called = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                if after_dot && called {
                    out.push(RawFinding::new(
                        "panic",
                        token.line,
                        format!("`.{name}()` in library code: handle the error or waive with a justification"),
                    ));
                }
            }
            Tok::Ident(name)
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    out.push(RawFinding::new(
                        "panic",
                        token.line,
                        format!("`{name}!` in library code: return an error or waive with a justification"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// `slice-index`: indexing with a *computed* index (`v[i + 1]`, `v[n - k]`)
/// in library code.
///
/// A lexical pass cannot see bounds proofs, so this rule draws the line at
/// arithmetic in the index expression — the classic off-by-one panic source —
/// and leaves plain `v[i]` loop indexing alone.  Ranges are also left to
/// dedicated review (slicing panics are rarer and usually length-derived).
pub fn check_slice_index(file: &SourceFile, _ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for (i, token) in toks.iter().enumerate() {
        if token.tok != Tok::Punct('[') || file.in_test(token.line) {
            continue;
        }
        // Subscript position: the `[` must follow a value-ending token.
        let is_subscript = match toks.get(i.wrapping_sub(1)).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => !NON_VALUE_KEYWORDS.contains(&name.as_str()),
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Str) => true,
            _ => false,
        } && i > 0;
        if !is_subscript {
            continue;
        }
        let Some(close) = matching_bracket(toks, i) else {
            continue;
        };
        let inner: Vec<&Tok> = toks
            .get(i + 1..close)
            .unwrap_or(&[])
            .iter()
            .map(|t| &t.tok)
            .collect();
        if inner.is_empty() || has_range(&inner) {
            continue;
        }
        if let Some(op) = arithmetic_op(&inner) {
            out.push(RawFinding::new(
                "slice-index",
                token.line,
                format!(
                    "computed index (`{op}` in subscript) can panic out of bounds: \
                     use .get()/checked math or waive with the bound that holds"
                ),
            ));
        }
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[crate::lexer::Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, token) in toks.iter().enumerate().skip(open) {
        match token.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Does the token slice contain a `..` range (two adjacent `.` puncts)?
fn has_range(inner: &[&Tok]) -> bool {
    inner
        .windows(2)
        .any(|w| matches!(w, [Tok::Punct('.'), Tok::Punct('.')]))
}

/// First top-level arithmetic operator in an index expression, if any.
/// Nested calls/brackets are skipped: `v[f(a + b)]` trusts `f` to return a
/// valid index, the same way `v[i]` trusts `i`.
fn arithmetic_op(inner: &[&Tok]) -> Option<char> {
    let mut depth = 0usize;
    let mut prev_was_value = false;
    for tok in inner {
        match tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                depth += 1;
                prev_was_value = false;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                prev_was_value = true;
            }
            Tok::Punct(op @ ('+' | '-' | '*' | '/' | '%')) if depth == 0 => {
                // `*x` deref and `-1` negation are unary when no value
                // precedes; only binary arithmetic counts.
                if prev_was_value {
                    return Some(*op);
                }
            }
            Tok::Ident(_) | Tok::Int | Tok::Float | Tok::Str => prev_was_value = true,
            _ => prev_was_value = false,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: fn(&SourceFile, &FileCtx, &mut Vec<RawFinding>), src: &str) -> Vec<RawFinding> {
        let file = SourceFile::parse("t.rs", src);
        let mut out = Vec::new();
        rule(&file, &FileCtx::default(), &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_flagged_outside_tests() {
        let src = "let x = foo().unwrap();\nlet y = bar().expect(\"reason\");\n\
                   #[cfg(test)]\nmod tests { fn t() { baz().unwrap(); } }\n";
        let hits = run(check_panics, src);
        assert_eq!(hits.len(), 2);
        // `unwrap_or` and a field named `expect` must not match.
        assert!(run(
            check_panics,
            "let x = foo().unwrap_or(0); let y = c.expect;"
        )
        .is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { unreachable!() }\nfn h() { todo!() }\n";
        assert_eq!(run(check_panics, src).len(), 3);
        // A fn named panic (no `!`) is fine.
        assert!(run(check_panics, "fn f() { panic_handler(); }").is_empty());
    }

    #[test]
    fn computed_index_flagged_plain_index_not() {
        assert_eq!(run(check_slice_index, "let x = v[i + 1];").len(), 1);
        assert_eq!(run(check_slice_index, "let x = v[n - k];").len(), 1);
        assert!(run(check_slice_index, "let x = v[i];").is_empty());
        assert!(run(check_slice_index, "let x = v[0];").is_empty());
        assert!(run(check_slice_index, "let s = &v[1..n];").is_empty());
        assert!(run(check_slice_index, "let t = [a + b, c];").is_empty()); // array literal
        assert!(run(check_slice_index, "let x = v[f(a + b)];").is_empty()); // nested call
        assert!(run(check_slice_index, "let x = m[&key];").is_empty()); // map index
    }

    #[test]
    fn unary_ops_in_index_are_not_arithmetic() {
        assert!(run(check_slice_index, "let x = v[*i];").is_empty());
        assert!(run(check_slice_index, "let x = v[i * 2];").len() == 1);
    }
}
