//! Determinism rules: every simulation result in this repo is a fixed-seed
//! claim, so anything whose behaviour varies per process — hash iteration
//! order, the wall clock, ambient RNGs — is a reproducibility hazard.

use crate::lexer::Tok;
use crate::rules::{FileCtx, RawFinding};
use crate::source::SourceFile;

/// `unordered-collection`: `HashMap`/`HashSet` in simulation-facing crates.
///
/// `RandomState` re-seeds per instance, so iteration order can silently leak
/// into results (this bit PR 3's `ManifestStore`).  Sim-facing crates must use
/// ordered maps, or waive lookup-only uses with a reason.
pub fn check_unordered_collections(file: &SourceFile, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if !ctx.sim_facing {
        return;
    }
    for token in &file.tokens {
        if let Tok::Ident(name) = &token.tok {
            if name == "HashMap" || name == "HashSet" {
                if file.in_test(token.line) {
                    continue;
                }
                out.push(RawFinding::new(
                    "unordered-collection",
                    token.line,
                    format!(
                        "`{name}` in sim-facing crate `{}`: iteration order is per-process; \
                         use BTreeMap/BTreeSet or waive a lookup-only use",
                        ctx.crate_name
                    ),
                ));
            }
        }
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime::now` outside measurement code.
///
/// Simulated time comes from the event queue; reading the host clock in sim
/// code makes runs irreproducible.  Timing/bench modules are exempted by path.
pub fn check_wall_clock(file: &SourceFile, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if ctx.wall_clock_exempt {
        return;
    }
    let toks = &file.tokens;
    for (i, token) in toks.iter().enumerate() {
        let Tok::Ident(name) = &token.tok else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        // `Instant::now` — require the `::now` to follow, so merely passing an
        // `Instant` around (e.g. a bench API taking a start time) stays legal.
        let is_now_call = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(n)) if n == "now");
        if is_now_call {
            out.push(RawFinding::new(
                "wall-clock",
                token.line,
                format!(
                    "`{name}::now` outside measurement code: simulations must take \
                     time from the event clock, not the host"
                ),
            ));
        }
    }
}

/// `ambient-rng`: `thread_rng` (OS-seeded) anywhere.  All randomness must flow
/// from an explicitly seeded `DetRng`.
pub fn check_ambient_rng(file: &SourceFile, _ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    for token in &file.tokens {
        if let Tok::Ident(name) = &token.tok {
            if name == "thread_rng" || name == "ThreadRng" {
                out.push(RawFinding::new(
                    "ambient-rng",
                    token.line,
                    format!("`{name}` is OS-seeded; derive randomness from a seeded DetRng"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_sim() -> FileCtx {
        FileCtx {
            crate_name: "peerstripe-core".into(),
            sim_facing: true,
            wall_clock_exempt: false,
        }
    }

    fn run(
        rule: fn(&SourceFile, &FileCtx, &mut Vec<RawFinding>),
        src: &str,
        ctx: &FileCtx,
    ) -> Vec<RawFinding> {
        let file = SourceFile::parse("t.rs", src);
        let mut out = Vec::new();
        rule(&file, ctx, &mut out);
        out
    }

    #[test]
    fn hashmap_flagged_only_in_sim_facing_non_test_code() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        let hits = run(check_unordered_collections, src, &ctx_sim());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);

        let non_sim = FileCtx {
            sim_facing: false,
            ..ctx_sim()
        };
        assert!(run(check_unordered_collections, src, &non_sim).is_empty());
    }

    #[test]
    fn instant_now_flagged_but_passing_instants_is_fine() {
        let bad = "let t = Instant::now();";
        assert_eq!(run(check_wall_clock, bad, &ctx_sim()).len(), 1);
        let ok = "fn elapsed_since(t: Instant) -> Duration { t.elapsed() }";
        assert!(run(check_wall_clock, ok, &ctx_sim()).is_empty());
        let exempt = FileCtx {
            wall_clock_exempt: true,
            ..ctx_sim()
        };
        assert!(run(check_wall_clock, bad, &exempt).is_empty());
    }

    #[test]
    fn system_time_now_flagged() {
        let hits = run(check_wall_clock, "let t = SystemTime::now();", &ctx_sim());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn thread_rng_flagged_everywhere() {
        let hits = run(
            check_ambient_rng,
            "let mut rng = rand::thread_rng();",
            &ctx_sim(),
        );
        assert_eq!(hits.len(), 1);
    }
}
