//! `peerstripe-lint` binary: lint the workspace, print findings, exit 0 only
//! when clean.
//!
//! ```text
//! cargo run -p peerstripe-lint -- [--root PATH] [--format text|json] [--verbose]
//! ```

use std::path::PathBuf;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut json = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(value));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("usage: peerstripe-lint [--root PATH] [--format text|json] [--verbose]");
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(Args {
        root,
        json,
        verbose,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match peerstripe_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    std::process::exit(2);
                }
            }
        }
    };
    match peerstripe_lint::run_workspace(&root) {
        Ok(report) => {
            if args.json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text(args.verbose));
            }
            std::process::exit(if report.is_clean() { 0 } else { 1 });
        }
        Err(msg) => {
            eprintln!("peerstripe-lint: {msg}");
            std::process::exit(2);
        }
    }
}
