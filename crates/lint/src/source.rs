//! Per-file analysis state: the token stream, `#[cfg(test)]` region map, and
//! the waiver table parsed from `// lint:allow(...)` comments.
//!
//! ## Waiver grammar
//!
//! ```text
//! // lint:allow(rule-a, rule-b) -- why this occurrence is acceptable
//! ```
//!
//! A waiver on the same line as code covers that line; a waiver alone on its
//! line covers the next line that has code.  The reason after `--` is
//! mandatory — a waiver without one is itself a finding — and every waiver
//! must suppress at least one finding or it is reported as stale.

use crate::lexer::{lex, Tok, Token};
use std::collections::{BTreeMap, BTreeSet};

/// One parsed `lint:allow` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule ids this waiver names.
    pub rules: Vec<String>,
    /// The line the comment sits on.
    pub line: u32,
    /// The line the waiver covers (same line, or next code line).
    pub covers: u32,
    /// Justification text after `--`, empty if missing.
    pub reason: String,
}

/// A lexed source file plus the derived maps the rules consume.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    /// Lines covered by `#[cfg(test)]` / `#[test]` items.
    test_lines: BTreeSet<u32>,
    /// Lines that have a `SAFETY:` comment ending on them.
    safety_comment_lines: BTreeSet<u32>,
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Lex and index one file.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();

        let mut waivers = Vec::new();
        let mut safety_comment_lines = BTreeSet::new();
        for comment in &lexed.comments {
            if comment.text.contains("SAFETY:") {
                safety_comment_lines.insert(comment.end_line);
            }
            if comment.is_line {
                if let Some(mut waiver) = parse_waiver(&comment.text, comment.line) {
                    waiver.covers = if token_lines.contains(&comment.line) {
                        comment.line
                    } else {
                        // Standalone comment: covers the next code line.
                        token_lines
                            .range(comment.line + 1..)
                            .next()
                            .copied()
                            .unwrap_or(comment.line)
                    };
                    waivers.push(waiver);
                }
            }
        }

        let test_lines = test_regions(&lexed.tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            tokens: lexed.tokens,
            test_lines,
            safety_comment_lines,
            waivers,
        }
    }

    /// True when `line` is inside a `#[cfg(test)]` module or `#[test]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// True when a `SAFETY:` comment ends on `line` or within `back` lines
    /// above it.
    pub fn has_safety_comment_near(&self, line: u32, back: u32) -> bool {
        let from = line.saturating_sub(back);
        self.safety_comment_lines
            .range(from..=line)
            .next()
            .is_some()
    }

    /// The waivers naming `rule` that cover `line`.
    pub fn waiver_for(&self, rule: &str, line: u32) -> Option<usize> {
        self.waivers
            .iter()
            .position(|w| w.covers == line && w.rules.iter().any(|r| r == rule))
    }
}

/// Parse `lint:allow(a, b) -- reason` out of one line comment's text.
///
/// The marker must open the comment (`// lint:allow(...)`): that keeps prose
/// *about* waivers — doc comments, this sentence — from being parsed as one.
fn parse_waiver(text: &str, line: u32) -> Option<Waiver> {
    let trimmed = text.trim_start();
    if !trimmed.starts_with("lint:allow(") {
        return None;
    }
    let after = trimmed.get("lint:allow(".len()..)?;
    let close = after.find(')')?;
    let rules: Vec<String> = after
        .get(..close)?
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let rest = after.get(close + 1..).unwrap_or("");
    let reason = match rest.find("--") {
        Some(dash) => rest.get(dash + 2..).unwrap_or("").trim().to_string(),
        None => String::new(),
    };
    Some(Waiver {
        rules,
        line,
        covers: line,
        reason,
    })
}

/// Compute the set of lines covered by test-only items.
///
/// Recognises `#[cfg(test)]` and `#[test]` attributes (rejecting
/// `#[cfg(not(test))]`), skips any further attributes, then spans the item to
/// its closing brace (or `;` for `mod tests;` forms).
fn test_regions(tokens: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some((attr_end, is_test)) = parse_attribute(tokens, i) {
            if is_test {
                let start_line = tokens.get(i).map(|t| t.line).unwrap_or(1);
                let mut j = attr_end;
                // Skip any further attributes on the same item.
                while let Some((next_end, _)) = parse_attribute(tokens, j) {
                    j = next_end;
                }
                let end = item_end(tokens, j);
                let end_line = tokens
                    .get(end.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(start_line);
                lines.extend(start_line..=end_line);
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    lines
}

/// If tokens at `i` start an attribute `#[...]`, return (index past `]`,
/// whether it marks test-only code).
fn parse_attribute(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if tokens.get(i)?.tok != Tok::Punct('#') {
        return None;
    }
    // `#![...]` inner attributes apply to the whole file; never a test marker
    // we want to span-match, so treat them like any attribute and keep going.
    let mut j = i + 1;
    if tokens.get(j)?.tok == Tok::Punct('!') {
        j += 1;
    }
    if tokens.get(j)?.tok != Tok::Punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut has_cfg_or_bare = false;
    let mut first_ident = true;
    while let Some(token) = tokens.get(j) {
        match &token.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let is_test = has_test && !has_not && has_cfg_or_bare;
                    return Some((j + 1, is_test));
                }
            }
            Tok::Ident(name) => {
                if first_ident {
                    has_cfg_or_bare = name == "cfg" || name == "test";
                    first_ident = false;
                }
                match name.as_str() {
                    "test" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index one past the end of the item starting at `i`: the matching `}` of its
/// first top-level brace, or the first `;` seen before any brace.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    // Find the item's opening `{` or terminating `;`, skipping nested
    // parens/brackets (e.g. a fn signature's argument list).
    let mut paren = 0i32;
    while let Some(token) = tokens.get(j) {
        match token.tok {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct(';') if paren == 0 => return j + 1,
            Tok::Punct('{') if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    // Match the braces.
    let mut depth = 0usize;
    while let Some(token) = tokens.get(j) {
        match token.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Tracks which waivers suppressed at least one finding, across all files.
#[derive(Default)]
pub struct WaiverLedger {
    used: BTreeMap<String, BTreeSet<usize>>,
}

impl WaiverLedger {
    pub fn mark_used(&mut self, file: &str, index: usize) {
        self.used.entry(file.to_string()).or_default().insert(index);
    }

    pub fn is_used(&self, file: &str, index: usize) -> bool {
        self.used.get(file).is_some_and(|s| s.contains(&index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_parses_rules_and_reason() {
        let src = "let m = HashMap::new(); // lint:allow(unordered-collection) -- lookup only\n";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.waivers.len(), 1);
        assert_eq!(file.waivers[0].rules, vec!["unordered-collection"]);
        assert_eq!(file.waivers[0].reason, "lookup only");
        assert_eq!(file.waivers[0].covers, 1);
        assert!(file.waiver_for("unordered-collection", 1).is_some());
        assert!(file.waiver_for("panic", 1).is_none());
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let src = "\n// lint:allow(panic, slice-index) -- test helper\n\nlet x = v[i + 1];\n";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.waivers.len(), 1);
        assert_eq!(file.waivers[0].covers, 4);
        assert_eq!(file.waivers[0].rules.len(), 2);
    }

    #[test]
    fn waiver_without_reason_has_empty_reason() {
        let file = SourceFile::parse("x.rs", "// lint:allow(panic)\nfoo();\n");
        assert_eq!(file.waivers.len(), 1);
        assert!(file.waivers[0].reason.is_empty());
    }

    #[test]
    fn cfg_test_module_lines_are_test_lines() {
        let src = "fn real() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n\nfn also_real() {}\n";
        let file = SourceFile::parse("x.rs", src);
        assert!(!file.in_test(1));
        assert!(file.in_test(3));
        assert!(file.in_test(4));
        assert!(file.in_test(5));
        assert!(file.in_test(6));
        assert!(!file.in_test(8));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn real() { body(); }\n";
        let file = SourceFile::parse("x.rs", src);
        assert!(!file.in_test(2));
    }

    #[test]
    fn safety_comment_proximity() {
        let src = "code();\n// SAFETY: aligned by construction\nunsafe { go() }\n";
        let file = SourceFile::parse("x.rs", src);
        assert!(file.has_safety_comment_near(3, 3));
        assert!(!file.has_safety_comment_near(1, 0));
    }
}
