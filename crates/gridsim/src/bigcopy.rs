//! The `bigCopy` case study (Section 6.4, Table 4).
//!
//! `bigCopy` is a trivially simple Condor job that copies a file of a given
//! size.  The paper runs it on a 32-machine pool under three storage back-ends:
//!
//! * **Whole file** — original Condor behaviour: the copy lives on a single
//!   machine's disk, so the job only works while some machine can hold it;
//! * **Fixed-size chunks** — a CFS-like back-end chopping the copy into 4 MB
//!   blocks, paying one p2p lookup per block;
//! * **Varying-size chunks** — PeerStripe, whose chunk count depends on node
//!   capacities rather than file size.
//!
//! [`run_bigcopy`] stores the copy through the corresponding storage system on a
//! freshly built pool (so chunk counts, retries, and lookups are *measured*, not
//! assumed) and converts them into wall-clock time with the pool's
//! [`NetworkModel`].  [`table4`] sweeps the paper's 1–128 GB file sizes.

use crate::network::NetworkModel;
use crate::pool::PoolConfig;
use peerstripe_baselines::{Cfs, CfsConfig};
use peerstripe_core::{PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe_sim::ByteSize;
use peerstripe_trace::FileRecord;
use serde::{Deserialize, Serialize};

/// The storage back-end used by a `bigCopy` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BigCopyScheme {
    /// Original Condor: the copy is stored whole on one machine.
    WholeFile,
    /// CFS-like fixed-size chunks (the paper uses 4 MB).
    FixedChunks,
    /// PeerStripe varying-size chunks.
    VaryingChunks,
}

impl BigCopyScheme {
    /// Column label used in Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            BigCopyScheme::WholeFile => "Whole file",
            BigCopyScheme::FixedChunks => "Fixed size chunks",
            BigCopyScheme::VaryingChunks => "Varying size chunks",
        }
    }
}

/// Result of one `bigCopy` run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BigCopyResult {
    /// File size copied.
    pub size: ByteSize,
    /// Whether the copy could be stored at all (the whole-file scheme fails once
    /// the file exceeds the submit machine's disk).
    pub succeeded: bool,
    /// Wall-clock seconds for the copy (meaningless when `succeeded` is false).
    pub elapsed_secs: f64,
    /// Number of chunks/blocks the copy was stored as.
    pub chunks: u64,
    /// Number of overlay lookups issued while storing.
    pub lookups: u64,
}

impl BigCopyResult {
    /// Overhead relative to a whole-file baseline time, as a percentage.
    pub fn overhead_pct(&self, baseline_secs: f64) -> Option<f64> {
        if !self.succeeded || baseline_secs <= 0.0 {
            None
        } else {
            Some(100.0 * (self.elapsed_secs / baseline_secs - 1.0))
        }
    }
}

/// Run `bigCopy` for one file size under one scheme on a freshly built pool.
pub fn run_bigcopy(
    size: ByteSize,
    scheme: BigCopyScheme,
    pool_config: &PoolConfig,
    seed: u64,
) -> BigCopyResult {
    let net = pool_config.network;
    let mut pool = pool_config.build(seed);
    let file = FileRecord::new("bigCopy.out", size);

    match scheme {
        BigCopyScheme::WholeFile => {
            // Original Condor: the copy lands on the submission machine's disk.
            let fits = size <= pool.submit_machine_disk();
            BigCopyResult {
                size,
                succeeded: fits,
                elapsed_secs: if fits {
                    net.transfer_secs(size)
                } else {
                    f64::NAN
                },
                chunks: 1,
                lookups: 0,
            }
        }
        BigCopyScheme::FixedChunks => {
            let cluster = pool.take_cluster();
            let mut cfs = Cfs::new(
                cluster,
                CfsConfig {
                    // "enough retries were made … to ensure that all blocks can
                    // be stored" — give the baseline a deep retry budget.
                    retries_per_block: 64,
                    track_manifests: false,
                    ..CfsConfig::paper_simulation()
                },
            );
            let outcome = cfs.store_file(&file);
            let lookups = cfs.cluster().overlay().stats().lookups;
            let chunks = cfs.blocks_for(size);
            let elapsed = scheme_time(&net, size, chunks, lookups, false);
            BigCopyResult {
                size,
                succeeded: outcome.is_stored(),
                elapsed_secs: elapsed,
                chunks,
                lookups,
            }
        }
        BigCopyScheme::VaryingChunks => {
            let cluster = pool.take_cluster();
            let mut ps = PeerStripe::new(
                cluster,
                PeerStripeConfig {
                    zero_chunk_limit: 64,
                    track_manifests: true,
                    ..PeerStripeConfig::paper_simulation()
                },
            );
            let outcome = ps.store_file(&file);
            let lookups = ps.cluster().overlay().stats().lookups;
            let chunks = ps
                .manifest("bigCopy.out")
                .map(|m| m.chunks.iter().filter(|c| !c.size.is_zero()).count() as u64)
                .unwrap_or(0);
            let elapsed = scheme_time(&net, size, chunks, lookups, true);
            BigCopyResult {
                size,
                succeeded: outcome.is_stored(),
                elapsed_secs: elapsed,
                chunks,
                lookups,
            }
        }
    }
}

/// Convert measured placement activity into wall-clock seconds.
fn scheme_time(
    net: &NetworkModel,
    size: ByteSize,
    chunks: u64,
    lookups: u64,
    varying: bool,
) -> f64 {
    // In the 32-node pool every lookup resolves in one hop; lookups issued later
    // in the job contend with its own bulk transfer (see `lookup_sequence_secs`).
    let mut t = net.transfer_secs(size)
        + net.interposition_fixed_secs
        + net.lookup_sequence_secs(1, lookups);
    if varying {
        // getCapacity probing and CAT creation/replication.
        t += net.varying_setup_secs + net.message_secs(1) * chunks as f64;
    }
    t
}

/// One row of Table 4: the three schemes at one file size.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// File size for this row.
    pub size: ByteSize,
    /// Whole-file result.
    pub whole: BigCopyResult,
    /// Fixed-size-chunk result.
    pub fixed: BigCopyResult,
    /// Varying-size-chunk result.
    pub varying: BigCopyResult,
}

impl Table4Row {
    /// Overhead of the fixed-chunk scheme over the whole-file scheme (percent),
    /// `None` when the whole-file scheme could not store the file.
    pub fn fixed_overhead_pct(&self) -> Option<f64> {
        self.whole
            .succeeded
            .then(|| self.fixed.overhead_pct(self.whole.elapsed_secs))
            .flatten()
    }

    /// Overhead of the varying-chunk scheme over the whole-file scheme (percent).
    pub fn varying_overhead_pct(&self) -> Option<f64> {
        self.whole
            .succeeded
            .then(|| self.varying.overhead_pct(self.whole.elapsed_secs))
            .flatten()
    }
}

/// Reproduce Table 4: `bigCopy` for each file size under the three schemes.
pub fn table4(sizes: &[ByteSize], pool_config: &PoolConfig, seed: u64) -> Vec<Table4Row> {
    sizes
        .iter()
        .map(|&size| Table4Row {
            size,
            whole: run_bigcopy(size, BigCopyScheme::WholeFile, pool_config, seed),
            fixed: run_bigcopy(size, BigCopyScheme::FixedChunks, pool_config, seed),
            varying: run_bigcopy(size, BigCopyScheme::VaryingChunks, pool_config, seed),
        })
        .collect()
}

/// The file sizes of Table 4: 1, 2, 4, … 128 GB.
pub fn table4_sizes() -> Vec<ByteSize> {
    (0..8).map(|i| ByteSize::gb(1 << i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels() {
        assert_eq!(BigCopyScheme::WholeFile.label(), "Whole file");
        assert_eq!(BigCopyScheme::FixedChunks.label(), "Fixed size chunks");
        assert_eq!(BigCopyScheme::VaryingChunks.label(), "Varying size chunks");
    }

    #[test]
    fn whole_file_fails_past_submit_disk() {
        let cfg = PoolConfig::paper();
        let small = run_bigcopy(ByteSize::gb(1), BigCopyScheme::WholeFile, &cfg, 1);
        assert!(small.succeeded);
        let big = run_bigcopy(ByteSize::gb(16), BigCopyScheme::WholeFile, &cfg, 1);
        assert!(
            !big.succeeded,
            "16 GB exceeds any single machine, as in Table 4"
        );
    }

    #[test]
    fn chunked_schemes_store_what_whole_file_cannot() {
        let cfg = PoolConfig::paper();
        for scheme in [BigCopyScheme::FixedChunks, BigCopyScheme::VaryingChunks] {
            let r = run_bigcopy(ByteSize::gb(16), scheme, &cfg, 2);
            assert!(r.succeeded, "{:?} must store a 16 GB copy", scheme);
            assert!(r.elapsed_secs.is_finite());
        }
    }

    #[test]
    fn varying_chunks_create_far_fewer_chunks() {
        let cfg = PoolConfig::paper();
        let fixed = run_bigcopy(ByteSize::gb(8), BigCopyScheme::FixedChunks, &cfg, 3);
        let varying = run_bigcopy(ByteSize::gb(8), BigCopyScheme::VaryingChunks, &cfg, 3);
        assert!(fixed.chunks >= 2048);
        assert!(varying.chunks <= 64);
        assert!(fixed.lookups > varying.lookups * 10);
    }

    #[test]
    fn fixed_chunk_overhead_grows_with_size_varying_shrinks() {
        // The qualitative shape of Table 4.
        let cfg = PoolConfig::paper();
        let rows = table4(&[ByteSize::gb(1), ByteSize::gb(8)], &cfg, 4);
        let fixed_1 = rows[0].fixed_overhead_pct().unwrap();
        let fixed_8 = rows[1].fixed_overhead_pct().unwrap();
        let varying_1 = rows[0].varying_overhead_pct().unwrap();
        let varying_8 = rows[1].varying_overhead_pct().unwrap();
        assert!(
            fixed_8 > fixed_1,
            "fixed-chunk overhead must grow: {fixed_1:.1}% -> {fixed_8:.1}%"
        );
        assert!(
            varying_8 < varying_1,
            "varying-chunk overhead must shrink: {varying_1:.1}% -> {varying_8:.1}%"
        );
        assert!(varying_8 < fixed_8, "at 8 GB varying chunks must win");
    }

    #[test]
    fn per_size_times_increase_with_size() {
        let cfg = PoolConfig::paper();
        let rows = table4(
            &[ByteSize::gb(1), ByteSize::gb(2), ByteSize::gb(4)],
            &cfg,
            5,
        );
        for pair in rows.windows(2) {
            assert!(pair[1].fixed.elapsed_secs > pair[0].fixed.elapsed_secs);
            assert!(pair[1].varying.elapsed_secs > pair[0].varying.elapsed_secs);
        }
    }

    #[test]
    fn table4_sizes_match_paper() {
        let sizes = table4_sizes();
        assert_eq!(sizes.len(), 8);
        assert_eq!(sizes[0], ByteSize::gb(1));
        assert_eq!(sizes[7], ByteSize::gb(128));
    }
}
