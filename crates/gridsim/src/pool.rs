//! A Condor-like desktop-grid pool and the I/O interposition shim.
//!
//! The case study of Section 6.4 interfaces PeerStripe with Condor: jobs run on
//! pool machines, and an LD_PRELOAD library interposes on `open`/`read`/`write`/
//! `close`, redirecting I/O to the distributed storage through a local lookup
//! module with a chunk-location cache (Section 5, Figure 6).  This module
//! provides the simulation equivalents:
//!
//! * [`CondorPool`] — the 32-machine pool with uniformly distributed contributed
//!   storage, a submit machine, and simple job execution;
//! * [`VfsClient`] — the interposition shim: per-call accounting, a location
//!   cache that avoids repeated p2p lookups, and redirection of reads/writes to
//!   a [`peerstripe_core::StorageSystem`].

use crate::network::NetworkModel;
use peerstripe_core::{ClusterConfig, StorageCluster, StorageSystem};
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_trace::CapacityModel;
use std::collections::BTreeMap;

/// Configuration of the simulated Condor pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker machines in the pool (the paper uses 32).
    pub machines: usize,
    /// Contributed-capacity distribution of the workers.
    pub contributed: CapacityModel,
    /// Free disk space on the submission machine (bounds the whole-file scheme).
    pub submit_machine_disk: ByteSize,
    /// Network/overhead model.
    pub network: NetworkModel,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            machines: 32,
            contributed: CapacityModel::paper_condor_pool(),
            submit_machine_disk: ByteSize::gb(12),
            network: NetworkModel::paper_condor(),
        }
    }
}

impl PoolConfig {
    /// The paper's 32-machine laboratory pool.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Build the pool (deterministic in the seed).
    pub fn build(&self, seed: u64) -> CondorPool {
        let mut rng = DetRng::new(seed).fork("condor-pool");
        let cluster = ClusterConfig {
            nodes: self.machines,
            capacity: self.contributed,
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        CondorPool {
            config: self.clone(),
            cluster: Some(cluster),
        }
    }
}

/// The simulated Condor pool.
#[derive(Debug)]
pub struct CondorPool {
    config: PoolConfig,
    cluster: Option<StorageCluster>,
}

impl CondorPool {
    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Borrow the contributed-storage cluster.
    pub fn cluster(&self) -> &StorageCluster {
        self.cluster.as_ref().expect("cluster present until taken") // lint:allow(panic) -- cluster is Some until take_cluster; callers uphold the protocol
    }

    /// Take ownership of the cluster to hand it to a storage system.
    pub fn take_cluster(&mut self) -> StorageCluster {
        self.cluster.take().expect("cluster already taken") // lint:allow(panic) -- single handoff point; taking twice is a caller bug worth aborting on
    }

    /// Aggregate contributed capacity of the pool.
    pub fn total_contributed(&self) -> ByteSize {
        self.cluster().total_capacity()
    }

    /// Free space on the submission machine (the whole-file scheme's limit).
    pub fn submit_machine_disk(&self) -> ByteSize {
        self.config.submit_machine_disk
    }

    /// Network model of the pool.
    pub fn network(&self) -> &NetworkModel {
        &self.config.network
    }
}

/// Accounting of the interposition library's activity during a job.
#[derive(Debug, Clone, Copy, Default)]
pub struct VfsStats {
    /// Interposed calls (open/read/write/close) observed.
    pub calls: u64,
    /// Location-cache hits.
    pub cache_hits: u64,
    /// Location-cache misses (each one costs a p2p lookup).
    pub cache_misses: u64,
    /// Bytes read through the shim.
    pub bytes_read: ByteSize,
    /// Bytes written through the shim.
    pub bytes_written: ByteSize,
}

/// The I/O interposition shim (the 259-line C library of Section 5, as a model).
///
/// It wraps a [`StorageSystem`]: `open` resolves and caches chunk locations,
/// `read`/`write` account transferred bytes and charge lookups on cache misses,
/// `close` clears the descriptor.  The shim does not move real bytes — the byte
/// path of `peerstripe_core::PeerStripe` does that — it produces the call/lookup
/// accounting the Table 4 time model consumes.
pub struct VfsClient<'a, S: StorageSystem> {
    system: &'a mut S,
    /// descriptor -> (file name, cached chunk-location knowledge)
    open_files: BTreeMap<u64, OpenFile>,
    next_fd: u64,
    stats: VfsStats,
}

#[derive(Debug, Clone)]
struct OpenFile {
    name: String,
    /// Chunk numbers whose location has been cached by a previous access.
    cached_chunks: std::collections::BTreeSet<u32>,
}

impl<'a, S: StorageSystem> VfsClient<'a, S> {
    /// Create a shim over a storage system.
    pub fn new(system: &'a mut S) -> Self {
        VfsClient {
            system,
            open_files: BTreeMap::new(),
            next_fd: 3, // 0-2 are stdin/stdout/stderr, as in the real library
            stats: VfsStats::default(),
        }
    }

    /// Accounting so far.
    pub fn stats(&self) -> VfsStats {
        self.stats
    }

    /// Interposed `open`: assigns a descriptor; returns `None` for unknown files
    /// (mirroring the original returning an error from the redirected open).
    pub fn open(&mut self, name: &str) -> Option<u64> {
        self.stats.calls += 1;
        self.system.manifest(name)?;
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open_files.insert(
            fd,
            OpenFile {
                name: name.to_string(),
                cached_chunks: std::collections::BTreeSet::new(),
            },
        );
        Some(fd)
    }

    /// Interposed `read` of `len` bytes at `offset`; returns the number of bytes
    /// that the read can serve (clamped at end of file), or `None` for a bad fd.
    pub fn read(&mut self, fd: u64, offset: u64, len: u64) -> Option<u64> {
        self.stats.calls += 1;
        let file = self.open_files.get(&fd)?.clone();
        let manifest = self.system.manifest(&file.name)?;
        let size = manifest.size.as_u64();
        if offset >= size {
            return Some(0);
        }
        let served = len.min(size - offset);
        // Which chunks does the range touch?  A cache miss per uncached chunk.
        let mut touched = Vec::new();
        let mut start = 0u64;
        for chunk in &manifest.chunks {
            let end = start + chunk.size.as_u64();
            if chunk.size.as_u64() > 0 && end > offset && start < offset + served {
                touched.push(chunk.chunk);
            }
            start = end;
        }
        if let Some(open) = self.open_files.get_mut(&fd) {
            for chunk_no in touched {
                if open.cached_chunks.insert(chunk_no) {
                    self.stats.cache_misses += 1;
                } else {
                    self.stats.cache_hits += 1;
                }
            }
        }
        self.stats.bytes_read += ByteSize::bytes(served);
        Some(served)
    }

    /// Interposed `write`: accounts bytes written through the shim.
    pub fn write(&mut self, fd: u64, len: u64) -> Option<u64> {
        self.stats.calls += 1;
        if !self.open_files.contains_key(&fd) {
            return None;
        }
        self.stats.bytes_written += ByteSize::bytes(len);
        Some(len)
    }

    /// Interposed `close`: releases the descriptor so it can be reused.
    pub fn close(&mut self, fd: u64) -> bool {
        self.stats.calls += 1;
        self.open_files.remove(&fd).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_core::{PeerStripe, PeerStripeConfig};
    use peerstripe_trace::FileRecord;

    fn pool_system(seed: u64) -> PeerStripe {
        let mut pool = PoolConfig::paper().build(seed);
        PeerStripe::new(pool.take_cluster(), PeerStripeConfig::default())
    }

    #[test]
    fn pool_matches_paper_parameters() {
        let pool = PoolConfig::paper().build(1);
        assert_eq!(pool.cluster().node_count(), 32);
        let total = pool.total_contributed();
        // 32 machines contributing U(2,15) GB: expect roughly 32 × 8.5 ≈ 272 GB.
        assert!(
            total > ByteSize::gb(150) && total < ByteSize::gb(400),
            "total {total}"
        );
        assert!(pool.submit_machine_disk() >= ByteSize::gb(8));
    }

    #[test]
    fn vfs_open_read_close_cycle() {
        let mut ps = pool_system(2);
        assert!(ps
            .store_file(&FileRecord::new("input.dat", ByteSize::gb(2)))
            .is_stored());
        let mut vfs = VfsClient::new(&mut ps);
        let fd = vfs.open("input.dat").unwrap();
        // Sequential reads within one chunk: first read misses, later ones hit.
        assert_eq!(vfs.read(fd, 0, 1024).unwrap(), 1024);
        assert_eq!(vfs.read(fd, 1024, 1024).unwrap(), 1024);
        let stats = vfs.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.bytes_read, ByteSize::kb(2));
        assert!(vfs.close(fd));
        assert!(!vfs.close(fd), "descriptor is cleared on close");
    }

    #[test]
    fn vfs_read_past_eof_returns_zero() {
        let mut ps = pool_system(3);
        assert!(ps
            .store_file(&FileRecord::new("f", ByteSize::mb(10)))
            .is_stored());
        let mut vfs = VfsClient::new(&mut ps);
        let fd = vfs.open("f").unwrap();
        assert_eq!(vfs.read(fd, ByteSize::mb(20).as_u64(), 100).unwrap(), 0);
        let served = vfs.read(fd, ByteSize::mb(10).as_u64() - 50, 1000).unwrap();
        assert_eq!(served, 50, "reads clamp at end of file");
    }

    #[test]
    fn vfs_rejects_unknown_files_and_descriptors() {
        let mut ps = pool_system(4);
        let mut vfs = VfsClient::new(&mut ps);
        assert!(vfs.open("missing").is_none());
        assert!(vfs.read(77, 0, 10).is_none());
        assert!(vfs.write(77, 10).is_none());
        assert!(!vfs.close(77));
    }

    #[test]
    fn cache_misses_track_distinct_chunks() {
        let mut ps = pool_system(5);
        assert!(ps
            .store_file(&FileRecord::new("multi", ByteSize::gb(20)))
            .is_stored());
        let chunk_count = ps
            .manifest("multi")
            .unwrap()
            .chunks
            .iter()
            .filter(|c| !c.size.is_zero())
            .count();
        assert!(
            chunk_count >= 2,
            "a 20 GB file must span several pool machines"
        );
        let mut vfs = VfsClient::new(&mut ps);
        let fd = vfs.open("multi").unwrap();
        // Read the whole file: one miss per chunk.
        let size = ByteSize::gb(20).as_u64();
        vfs.read(fd, 0, size).unwrap();
        assert_eq!(vfs.stats().cache_misses as usize, chunk_count);
        // Reading again hits the cache for every chunk.
        vfs.read(fd, 0, size).unwrap();
        assert_eq!(vfs.stats().cache_misses as usize, chunk_count);
        assert_eq!(vfs.stats().cache_hits as usize, chunk_count);
    }
}
