//! The desktop-grid network and overhead model.
//!
//! The Condor case study (Section 6.4, Table 4) measures wall-clock times for a
//! `bigCopy` job on a 32-machine pool connected by 100 Mb/s Ethernet.  Three
//! cost components govern those times:
//!
//! * the **bulk transfer** of the file contents over the shared link — this
//!   dominates for large files and is common to every scheme;
//! * a **fixed interposition overhead** — the LD_PRELOAD redirection library,
//!   RPC hand-off to the local PeerStripe instance, and (for the varying-chunk
//!   scheme) the `getCapacity` probing and CAT creation;
//! * a **per-chunk lookup overhead** — one p2p lookup per chunk placed, so it is
//!   proportional to the number of chunks a scheme creates.
//!
//! [`NetworkModel`] captures those components; its defaults are calibrated so a
//! 1 GB whole-file copy takes on the order of the paper's ~150 s (an effective
//! ~6.8 MB/s on the shared 100 Mb/s segment once both the read and the write
//! traverse it).

use peerstripe_sim::ByteSize;
use serde::{Deserialize, Serialize};

/// Cost model for desktop-grid transfers and overlay lookups.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Effective end-to-end throughput for bulk data (bytes per second).
    pub effective_bandwidth: ByteSize,
    /// Latency charged per overlay routing hop, in milliseconds.
    pub per_hop_ms: f64,
    /// Fixed cost per chunk/block placement besides routing (connection set-up,
    /// metadata bookkeeping), in milliseconds.
    pub per_chunk_ms: f64,
    /// Fixed cost per interposed I/O *session* (library redirection, RPC to the
    /// local instance), in seconds.
    pub interposition_fixed_secs: f64,
    /// Extra fixed cost for the varying-chunk scheme: `getCapacity` probing of
    /// prospective targets and CAT creation/replication, in seconds.
    pub varying_setup_secs: f64,
    /// Contention scale for lookup traffic: the i-th lookup of a job is slowed by
    /// a factor `1 + i / contention_scale`, modelling control messages queueing
    /// behind the job's own bulk transfer on the shared segment.  Schemes that
    /// issue tens of thousands of lookups (fixed 4 MB chunks on a 128 GB copy)
    /// feel this; schemes with a handful of chunks do not.
    pub contention_scale: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            // 100 Mb/s = 12.5 MB/s raw; reads and writes share the segment, so
            // the effective copy throughput is roughly half of that.
            effective_bandwidth: ByteSize::bytes(6_800_000),
            per_hop_ms: 12.0,
            per_chunk_ms: 30.0,
            interposition_fixed_secs: 8.0,
            varying_setup_secs: 17.0,
            contention_scale: 1200.0,
        }
    }
}

impl NetworkModel {
    /// The configuration used for the Table 4 reproduction (the defaults).
    pub fn paper_condor() -> Self {
        Self::default()
    }

    /// Time to move `size` bytes of payload over the network, in seconds.
    pub fn transfer_secs(&self, size: ByteSize) -> f64 {
        size.as_u64() as f64 / self.effective_bandwidth.as_u64() as f64
    }

    /// Time for one chunk placement that needed `hops` overlay routing hops and
    /// `attempts` placement attempts, in seconds.
    pub fn lookup_secs(&self, hops: usize, attempts: usize) -> f64 {
        let attempts = attempts.max(1) as f64;
        (self.per_hop_ms * hops as f64 + self.per_chunk_ms) * attempts / 1_000.0
    }

    /// One-way latency of a single message, in seconds.
    pub fn message_secs(&self, hops: usize) -> f64 {
        self.per_hop_ms * hops.max(1) as f64 / 1_000.0
    }

    /// Total time for a *sequence* of `count` lookups of `hops` hops each,
    /// including the contention slow-down that builds up as the job's own
    /// control traffic competes with its bulk transfer.
    pub fn lookup_sequence_secs(&self, hops: usize, count: u64) -> f64 {
        let base = self.lookup_secs(hops, 1);
        let n = count as f64;
        // Sum over i in 0..n of base * (1 + i/scale)  =  base * n * (1 + (n-1)/(2*scale)).
        base * n * (1.0 + (n - 1.0).max(0.0) / (2.0 * self.contention_scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_gigabyte_transfer_matches_paper_ballpark() {
        let net = NetworkModel::paper_condor();
        let t = net.transfer_secs(ByteSize::gb(1));
        // The paper measures 151 s for a 1 GB whole-file copy.
        assert!((130.0..=180.0).contains(&t), "1 GB copy took {t}s");
    }

    #[test]
    fn transfer_time_is_linear_in_size() {
        let net = NetworkModel::default();
        let t1 = net.transfer_secs(ByteSize::gb(1));
        let t8 = net.transfer_secs(ByteSize::gb(8));
        assert!((t8 / t1 - 8.0).abs() < 1e-9);
        assert_eq!(net.transfer_secs(ByteSize::ZERO), 0.0);
    }

    #[test]
    fn lookup_cost_grows_with_hops_and_attempts() {
        let net = NetworkModel::default();
        assert!(net.lookup_secs(4, 1) > net.lookup_secs(1, 1));
        assert!(net.lookup_secs(2, 3) > net.lookup_secs(2, 1));
        assert!(
            net.lookup_secs(0, 0) > 0.0,
            "even a local placement has fixed cost"
        );
        assert!(net.message_secs(3) > net.message_secs(1));
    }
}
