//! Desktop-grid (Condor) integration case study.
//!
//! The paper's Section 6.4 interfaces the proposed storage system with Condor
//! through an LD_PRELOAD I/O interposition library and measures a `bigCopy` job
//! over a 32-machine pool (Table 4).  This crate simulates that setting:
//!
//! * [`network::NetworkModel`] — bulk-transfer, per-lookup and interposition
//!   cost model for the 100 Mb/s pool;
//! * [`pool`] — the Condor-like pool ([`pool::CondorPool`]) and the I/O
//!   interposition shim ([`pool::VfsClient`]) with its chunk-location cache;
//! * [`bigcopy`] — the `bigCopy` application and the Table 4 driver comparing
//!   whole-file, fixed-chunk, and varying-chunk back-ends.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bigcopy;
pub mod network;
pub mod pool;

pub use bigcopy::{run_bigcopy, table4, table4_sizes, BigCopyResult, BigCopyScheme, Table4Row};
pub use network::NetworkModel;
pub use pool::{CondorPool, PoolConfig, VfsClient, VfsStats};
