//! Criterion benchmark harness.
//!
//! One benchmark group per table/figure of the paper's evaluation:
//!
//! * `storesim_figs` — Figures 7, 8, 9 and Table 1 (insertion comparison);
//! * `fault_tolerance` — Figure 10, Table 2, Table 3;
//! * `multicast_figs` — Figures 11 and 12;
//! * `condor_table4` — Table 4.
//!
//! The benchmarks measure the cost of regenerating each result at a reduced
//! scale; the `repro` binary (in `peerstripe-experiments`) prints the actual
//! tables and curves.
