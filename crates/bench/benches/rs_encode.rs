//! Benches the Reed–Solomon encode kernels: serial vs `std::thread::scope`-
//! sharded parallel parity generation at 1–4 MB chunks, with the online code's
//! encode at the same chunk sizes as the paper's point of comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use peerstripe_erasure::{ErasureCode, OnlineCode, ReedSolomonCode};
use peerstripe_sim::{ByteSize, DetRng};
use std::time::Duration;

fn chunk(size: ByteSize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    (0..size.as_u64()).map(|_| rng.next_u32() as u8).collect()
}

/// RS(64, 96): 64 data + 32 parity blocks, 50 % parity work per byte — the
/// regime where sharding parity rows across cores pays off.
fn bench_rs_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let code = ReedSolomonCode::new(64, 32);
    for mb in [1u64, 2, 4] {
        let data = chunk(ByteSize::mb(mb), mb);
        group.bench_function(format!("serial/{mb}MB"), |b| {
            b.iter(|| code.encode_serial(&data))
        });
        group.bench_function(format!("parallel/{mb}MB"), |b| {
            b.iter(|| code.parallel_encode(&data))
        });
    }
    group.finish();
}

/// The online code encoding the same chunks: sub-optimal recovery, but cheaper
/// encoding — the paper's Table 2 trade-off at bench granularity.
fn bench_online_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_vs_online_encode");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let online = OnlineCode::with_overhead(96, 0.01, 3, 1.25);
    for mb in [1u64, 4] {
        let data = chunk(ByteSize::mb(mb), mb + 10);
        group.bench_function(format!("online/{mb}MB"), |b| {
            b.iter(|| online.encode(&data))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rs_serial_vs_parallel,
    bench_online_comparison
);
criterion_main!(benches);
