//! Benches the Reed–Solomon encode kernels: the serial `scalar` reference
//! kernel vs the serial wide-lane `nibble64` kernel vs the column-stripe
//! parallel path at 1–4 MB chunks (the ≥5× single-core kernel speedup at
//! 1 MB is an acceptance gate), with the online code's encode at the same
//! chunk sizes as the paper's point of comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use peerstripe_erasure::{ErasureCode, Gf256Kernel, OnlineCode, ReedSolomonCode};
use peerstripe_sim::{ByteSize, DetRng};
use std::time::Duration;

fn chunk(size: ByteSize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    (0..size.as_u64()).map(|_| rng.next_u32() as u8).collect()
}

/// RS(64, 96): 64 data + 32 parity blocks, 50 % parity work per byte — the
/// regime where both the kernel speedup and the column-stripe split pay off.
fn bench_rs_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let scalar = ReedSolomonCode::new(64, 32).with_kernel(Gf256Kernel::Scalar);
    let fast = ReedSolomonCode::new(64, 32).with_kernel(Gf256Kernel::Nibble64);
    for mb in [1u64, 2, 4] {
        let data = chunk(ByteSize::mb(mb), mb);
        group.bench_function(format!("serial_scalar/{mb}MB"), |b| {
            b.iter(|| scalar.encode_serial(&data))
        });
        group.bench_function(format!("serial_nibble64/{mb}MB"), |b| {
            b.iter(|| fast.encode_serial(&data))
        });
        group.bench_function(format!("parallel/{mb}MB"), |b| {
            b.iter(|| fast.parallel_encode(&data))
        });
    }
    group.finish();
}

/// The online code encoding the same chunks: sub-optimal recovery, but cheaper
/// encoding — the paper's Table 2 trade-off at bench granularity.
fn bench_online_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_vs_online_encode");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let online = OnlineCode::with_overhead(96, 0.01, 3, 1.25);
    for mb in [1u64, 4] {
        let data = chunk(ByteSize::mb(mb), mb + 10);
        group.bench_function(format!("online/{mb}MB"), |b| {
            b.iter(|| online.encode(&data))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rs_kernels, bench_online_comparison);
criterion_main!(benches);
