//! Benches regenerating Figures 11 and 12: Bullet/RanSub replica dissemination
//! over the paper's 63-node binary tree.

use criterion::{criterion_group, criterion_main, Criterion};
use peerstripe_multicast::{BulletConfig, BulletSim, MulticastTree};
use peerstripe_sim::DetRng;
use std::time::Duration;

fn config(fraction: f64) -> BulletConfig {
    BulletConfig {
        packets: 250,
        ransub_fraction: fraction,
        per_epoch_budget: 4,
        upload_budget: 6,
        max_epochs: 10_000,
    }
}

/// Figure 11: full dissemination at the extremes of the RanSub sweep.
fn bench_fig11_ransub_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_ransub_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    for fraction in [0.03, 0.08, 0.16] {
        group.bench_function(
            format!("disseminate/ransub_{:.0}pct", fraction * 100.0),
            |b| {
                b.iter(|| {
                    let tree = MulticastTree::binary(5);
                    let mut rng = DetRng::new(11);
                    BulletSim::new(tree, config(fraction)).run(&mut rng)
                })
            },
        );
    }
    group.finish();
}

/// Figure 12: the min/avg/max spread run at RanSub = 16%.
fn bench_fig12_spread(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_packet_spread");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("disseminate_and_collect_spread", |b| {
        b.iter(|| {
            let tree = MulticastTree::binary(5);
            let mut rng = DetRng::new(12);
            let run = BulletSim::new(tree, config(0.16)).run(&mut rng);
            run.spread_series()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig11_ransub_sweep, bench_fig12_spread);
criterion_main!(benches);
