//! Benchmarks the repair subsystem's event throughput: how many maintenance
//! events per second the scheduler/engine sustains at 1 000 and 10 000 nodes.
//!
//! The engine's per-event cost is O(blocks touched), so events/sec should stay
//! roughly flat as the population grows — this bench is the regression guard
//! for that property.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use peerstripe_core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe_repair::{
    BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, MaintenanceEngine, RepairConfig,
    RepairPolicy, SessionModel,
};
use peerstripe_sim::{ByteSize, DetRng, SimTime};
use peerstripe_trace::TraceConfig;
use std::time::Duration;

/// A deployed cluster + manifests, cloneable per measurement batch.
fn deploy(
    nodes: usize,
    seed: u64,
) -> (
    peerstripe_core::StorageCluster,
    peerstripe_core::ManifestStore,
) {
    let mut rng = DetRng::new(seed);
    let cluster = ClusterConfig::scaled(nodes).build(&mut rng);
    let mut ps = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
    );
    // A light per-node load keeps bench setup fast while exercising the same
    // per-event code paths as the full sweep.
    let trace = TraceConfig::scaled(nodes * 2).generate(seed ^ 0xc0de);
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    let manifests = ps.manifests().clone();
    (ps.into_cluster(), manifests)
}

fn engine_of(
    cluster: peerstripe_core::StorageCluster,
    manifests: &peerstripe_core::ManifestStore,
    seed: u64,
) -> MaintenanceEngine {
    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: 8.0 * 3_600.0,
            mean_downtime_secs: 4.0 * 3_600.0,
        },
        permanent_fraction: 0.01,
        grouped: None,
    };
    let config = RepairConfig {
        policy: RepairPolicy::Eager,
        detector: DetectorConfig::default_desktop_grid().with_timeout(24.0 * 3_600.0),
        detection: DetectionKind::PerNodeTimeout,
        bandwidth: BandwidthBudget::symmetric(ByteSize::mb(4)),
        sample_period_secs: 3_600.0,
    };
    MaintenanceEngine::new(cluster, manifests, churn, config, seed)
}

/// Events/sec of the maintenance engine driving 24 h of churn.
fn bench_repair_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_schedule");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10));
    for nodes in [1_000usize, 10_000] {
        let (cluster, manifests) = deploy(nodes, 42);
        group.bench_function(format!("churn_24h/{nodes}_nodes"), |b| {
            b.iter_batched(
                || engine_of(cluster.clone(), &manifests, 42),
                |mut engine| {
                    engine.run_for(SimTime::from_secs(24 * 3_600));
                    engine.events_processed()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repair_schedule);
criterion_main!(benches);
