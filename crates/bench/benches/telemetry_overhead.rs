//! Benchmarks the telemetry layer's overhead on the maintenance hot path.
//!
//! Two questions matter for the sim's fidelity claims:
//!
//!   1. How expensive is a registry update (counter inc / histogram observe)?
//!      These sit on the per-event path of the engine, so they must stay in
//!      the tens-of-nanoseconds range.
//!   2. What does attaching a tracer cost a full engine run? The `NullTracer`
//!      default must be free (it is the configuration every sweep uses), and
//!      the structured tracers should stay within a small constant factor.
//!
//! `repair_schedule` remains the regression guard for the untraced engine;
//! this bench isolates the telemetry delta.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use peerstripe_core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe_repair::{
    BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, MaintenanceEngine, RepairConfig,
    RepairPolicy, SessionModel,
};
use peerstripe_sim::{ByteSize, DetRng, SimTime};
use peerstripe_telemetry::{JsonlTracer, MetricsRegistry, NullTracer, RingBufferTracer, Tracer};
use peerstripe_trace::TraceConfig;
use std::time::Duration;

/// Registry hot-path cost: get-or-create is amortised away by reusing the
/// handle, exactly as the engine does.
fn bench_registry_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_registry");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let mut registry = MetricsRegistry::new();
    let counter = registry.counter("bench_events_total", &[("kind", "inc")]);
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            registry.inc(counter, 1);
            registry.counter_value(counter)
        })
    });

    let bounds = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8];
    let histogram = registry.histogram("bench_bytes", &[("kind", "observe")], &bounds);
    let mut value = 1.0f64;
    group.bench_function("histogram_observe", |b| {
        b.iter(|| {
            // Walk the buckets so every branch of the linear scan is hit.
            value = if value > 1e8 { 1.0 } else { value * 3.7 };
            registry.observe(histogram, value);
        })
    });

    // Lookup-by-name is the cold path (export, tests); keep it honest too.
    group.bench_function("find_counter", |b| {
        b.iter(|| registry.find_counter("bench_events_total", &[("kind", "inc")]))
    });
    group.finish();
}

/// A deployed cluster + manifests, cloneable per measurement batch. Smaller
/// than `repair_schedule`'s populations: here the *relative* cost of the
/// tracer is the measurement, not absolute engine throughput.
fn deploy(
    nodes: usize,
    seed: u64,
) -> (
    peerstripe_core::StorageCluster,
    peerstripe_core::ManifestStore,
) {
    let mut rng = DetRng::new(seed);
    let cluster = ClusterConfig::scaled(nodes).build(&mut rng);
    let mut ps = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
    );
    let trace = TraceConfig::scaled(nodes * 2).generate(seed ^ 0xc0de);
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    let manifests = ps.manifests().clone();
    (ps.into_cluster(), manifests)
}

fn engine_of(
    cluster: peerstripe_core::StorageCluster,
    manifests: &peerstripe_core::ManifestStore,
    seed: u64,
) -> MaintenanceEngine {
    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: 8.0 * 3_600.0,
            mean_downtime_secs: 4.0 * 3_600.0,
        },
        permanent_fraction: 0.01,
        grouped: None,
    };
    let config = RepairConfig {
        policy: RepairPolicy::Eager,
        detector: DetectorConfig::default_desktop_grid().with_timeout(24.0 * 3_600.0),
        detection: DetectionKind::PerNodeTimeout,
        bandwidth: BandwidthBudget::symmetric(ByteSize::mb(4)),
        sample_period_secs: 3_600.0,
    };
    MaintenanceEngine::new(cluster, manifests, churn, config, seed)
}

/// A full 24 h engine run under each tracer. `null` is the baseline every
/// sweep pays; `jsonl` serialises every record; `ring` keeps the last 4096.
fn bench_tracer_attach(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));
    let nodes = 500usize;
    let (cluster, manifests) = deploy(nodes, 42);
    type MakeTracer = fn() -> Box<dyn Tracer>;
    let tracers: [(&str, MakeTracer); 3] = [
        ("null", || Box::new(NullTracer)),
        ("jsonl", || Box::new(JsonlTracer::new())),
        ("ring_4096", || Box::new(RingBufferTracer::new(4096))),
    ];
    for (label, make_tracer) in tracers {
        group.bench_function(format!("churn_24h/{nodes}_nodes/{label}"), |b| {
            b.iter_batched(
                || engine_of(cluster.clone(), &manifests, 42).with_tracer(make_tracer()),
                |mut engine| {
                    engine.run_for(SimTime::from_secs(24 * 3_600));
                    engine.events_processed()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_registry_ops, bench_tracer_attach);
criterion_main!(benches);
