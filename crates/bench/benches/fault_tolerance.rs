//! Benches regenerating Figure 10 (availability under churn), Table 2
//! (erasure-code cost) and Table 3 (regeneration under churn).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use peerstripe_core::churn::{AvailabilityTracker, RegenerationSim};
use peerstripe_core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe_erasure::{measure_code, ErasureCode, NullCode, OnlineCode, XorCode};
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_trace::TraceConfig;
use std::time::Duration;

/// Build a loaded deployment once per measurement batch.
fn deploy(coding: CodingPolicy, nodes: usize, files: usize, seed: u64) -> PeerStripe {
    let mut rng = DetRng::new(seed);
    let cluster = ClusterConfig::scaled(nodes).build(&mut rng);
    let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(coding));
    let trace = TraceConfig::scaled(files).generate(seed ^ 0xc0de);
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    ps
}

/// Figure 10: fail 10% of the nodes one by one and track unavailable files.
fn bench_fig10_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_availability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(6));
    for coding in [
        CodingPolicy::None,
        CodingPolicy::xor_2_3(),
        CodingPolicy::online_default(),
    ] {
        group.bench_function(format!("fail_10pct/{}", coding.label()), |b| {
            b.iter_batched(
                || deploy(coding, 150, 150 * 10, 7),
                |mut ps| {
                    let mut tracker = AvailabilityTracker::build(ps.manifests());
                    let sizes = AvailabilityTracker::file_sizes(ps.manifests());
                    let mut rng = DetRng::new(8);
                    for (node, _) in ps.cluster_mut().fail_random(15, &mut rng) {
                        tracker.fail_node(node, &sizes);
                    }
                    tracker.unavailable_pct()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Table 2: encode + decode one chunk under each codec.
fn bench_table2_erasure(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_erasure_codes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let chunk = ByteSize::kb(512);
    let blocks = 512;
    let null = NullCode::new(blocks);
    let xor = XorCode::new(2, blocks);
    let online = OnlineCode::with_overhead(blocks, 0.01, 3, 1.05);
    let codes: Vec<(&str, &dyn ErasureCode)> =
        vec![("null", &null), ("xor", &xor), ("online", &online)];
    for (name, code) in codes {
        group.bench_function(format!("encode_decode/{name}"), |b| {
            b.iter(|| measure_code(code, chunk, 1, 5))
        });
    }
    group.finish();
}

/// Table 3: fail 10% of the nodes with regeneration.
fn bench_table3_regeneration(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_churn_regeneration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(6));
    group.bench_function("fail_10pct_with_recovery", |b| {
        b.iter_batched(
            || deploy(CodingPolicy::online_default(), 150, 150 * 10, 9),
            |mut ps| {
                let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::mb(512), 60.0);
                let mut rng = DetRng::new(10);
                sim.fail_fraction(ps.cluster_mut(), 0.10, &mut rng)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig10_availability,
    bench_table2_erasure,
    bench_table3_regeneration
);
criterion_main!(benches);
