//! Bench regenerating Table 4: the Condor `bigCopy` case study on the 32-machine
//! pool, under the three storage back-ends.

use criterion::{criterion_group, criterion_main, Criterion};
use peerstripe_gridsim::{run_bigcopy, BigCopyScheme, PoolConfig};
use peerstripe_sim::ByteSize;
use std::time::Duration;

fn bench_table4_bigcopy(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_condor_bigcopy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(6));
    let pool = PoolConfig::paper();
    for (label, scheme) in [
        ("whole_file", BigCopyScheme::WholeFile),
        ("fixed_chunks", BigCopyScheme::FixedChunks),
        ("varying_chunks", BigCopyScheme::VaryingChunks),
    ] {
        group.bench_function(format!("copy_8gb/{label}"), |b| {
            b.iter(|| run_bigcopy(ByteSize::gb(8), scheme, &pool, 13))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4_bigcopy);
criterion_main!(benches);
