//! Benches regenerating Figures 7, 8, 9 and Table 1: the file-insertion
//! comparison of PAST, CFS and PeerStripe.
//!
//! Each benchmark runs one system's full insertion sweep at a reduced scale
//! (the distributions and the offered-load ratio match the paper; only the
//! population shrinks so Criterion iterations stay in the hundreds of
//! milliseconds).  The measured quantity is the simulation itself — the cost of
//! placing the whole trace — and the reported figures/tables are printed once
//! per run by the `repro` binary instead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use peerstripe_experiments::storesim::{run_single_system, StoreSimConfig, SystemKind};
use peerstripe_trace::TraceConfig;
use std::time::Duration;

fn bench_config() -> StoreSimConfig {
    StoreSimConfig {
        nodes: 80,
        files: 80 * 60,
        samples: 6,
        track_objects: true,
        seed: 42,
    }
}

fn bench_store_comparison(c: &mut Criterion) {
    let config = bench_config();
    let trace = TraceConfig::scaled(config.files).generate(config.seed ^ 0x7ace);
    let mut group = c.benchmark_group("fig7_fig8_fig9_table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(6));
    for kind in [SystemKind::Past, SystemKind::Cfs, SystemKind::PeerStripe] {
        group.bench_function(format!("insert_trace/{}", kind.label()), |b| {
            b.iter_batched(
                || (config.clone(), trace.clone()),
                |(config, trace)| run_single_system(kind, &config, &trace),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_comparison);
criterion_main!(benches);
