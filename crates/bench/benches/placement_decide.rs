//! Benchmarks placement decision throughput: chunk-placement plans and repair
//! target picks per second for every strategy at 1 000 and 10 000 nodes.
//!
//! `overlay-random` is a pure routing walk (O(log n) per block);
//! `domain-spread` adds per-domain accounting with an O(nodes) fallback scan
//! when the routed domain is over-used; `capacity-weighted` is O(nodes) per
//! draw by construction.  This bench is the regression guard for keeping the
//! store path's decision cost negligible next to the transfer it sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use peerstripe_core::ClusterConfig;
use peerstripe_overlay::Id;
use peerstripe_placement::{RepairRequest, StrategyKind, Topology};
use peerstripe_sim::{ByteSize, DetRng};
use std::time::Duration;

const BLOCKS_PER_CHUNK: usize = 8;
const DOMAIN_CAP: usize = 4;

fn bench_placement_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_decide");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));
    for nodes in [1_000usize, 10_000] {
        let mut rng = DetRng::new(7);
        let base = ClusterConfig::scaled(nodes).build(&mut rng);
        let topology = Topology::synthetic(nodes, 4, 8, 7);
        for kind in StrategyKind::ALL {
            // Chunk-placement planning: one 8-block plan per iteration, fresh
            // keys per chunk (the store path's hot decision).
            group.bench_function(format!("plan_chunk/{}/{nodes}_nodes", kind.label()), |b| {
                let mut cluster = base.clone();
                let mut strategy = kind.build(7);
                let mut chunk = 0u64;
                b.iter(|| {
                    chunk += 1;
                    let keys: Vec<Id> = (0..BLOCKS_PER_CHUNK as u64)
                        .map(|ecb| Id::hash(&format!("bench-file_{chunk}_{ecb}")))
                        .collect();
                    strategy
                        .plan_chunk(&mut cluster, Some(&topology), &keys, DOMAIN_CAP)
                        .map(|picks| picks.len())
                })
            });
            // Repair targeting: one replacement pick against a half-placed
            // chunk (the maintenance engine's hot decision).
            group.bench_function(
                format!("repair_targets/{}/{nodes}_nodes", kind.label()),
                |b| {
                    let cluster = base.clone();
                    let mut strategy = kind.build(7);
                    let mut rng = DetRng::new(11);
                    let holders: Vec<usize> = (0..BLOCKS_PER_CHUNK - 1).map(|i| i * 7).collect();
                    let request = RepairRequest {
                        want: 1,
                        size: ByteSize::mb(8),
                        holders: &holders,
                        domain_cap: DOMAIN_CAP,
                    };
                    b.iter(|| {
                        strategy
                            .repair_targets(&cluster, Some(&topology), &request, &mut rng)
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placement_decide);
criterion_main!(benches);
