//! Benchmarks failure-detection decision throughput: `node_down` bookkeeping
//! and `decide` verdicts per second for both policies at 1 000 and 10 000
//! nodes.
//!
//! `per-node` is O(1) per call (a generation check).  `outage-aware` adds an
//! O(domain size) clustered-absence scan at decide time — this bench is the
//! regression guard that keeps the scan negligible next to the maintenance
//! engine's event handling, and shows it does not grow with the *node* count,
//! only with the domain size.

use criterion::{criterion_group, criterion_main, Criterion};
use peerstripe_placement::Topology;
use peerstripe_repair::{
    DeclarationVerdict, DetectionPolicy, DetectorConfig, OutageAware, OutageAwareConfig,
    PendingDeclaration, PerNodeTimeout,
};
use peerstripe_sim::SimTime;
use std::time::Duration;

const GROUP_SIZE: usize = 25;

fn detector_config() -> DetectorConfig {
    DetectorConfig::default_desktop_grid().with_timeout(4.0 * 3_600.0)
}

/// Take half of every domain down at t=1000 (clustered — the outage-aware
/// worst case keeps re-classifying) and return the pending declarations.
fn take_half_down(policy: &mut dyn DetectionPolicy, nodes: usize) -> Vec<PendingDeclaration> {
    let at = SimTime::from_secs(1_000);
    (0..nodes)
        .filter(|n| n % 2 == 0)
        .map(|n| policy.node_down(n, at))
        .collect()
}

fn bench_detector_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_decide");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));
    for nodes in [1_000usize, 10_000] {
        let topology = Topology::uniform_groups(nodes, GROUP_SIZE);
        let policies: Vec<(&str, Box<dyn DetectionPolicy>)> = vec![
            (
                "per-node",
                Box::new(PerNodeTimeout::new(nodes, detector_config())),
            ),
            (
                "outage-aware",
                Box::new(OutageAware::new(
                    nodes,
                    detector_config(),
                    topology.domain_view(),
                    OutageAwareConfig::default_desktop_grid(),
                )),
            ),
        ];
        for (label, mut policy) in policies {
            let pendings = take_half_down(policy.as_mut(), nodes);
            // Decide throughput: one verdict per down node per iteration, at
            // the moment the declarations come due.
            group.bench_function(format!("decide/{label}/{nodes}_nodes"), |b| {
                b.iter(|| {
                    let mut verdicts = (0usize, 0usize, 0usize);
                    for (i, p) in pendings.iter().enumerate() {
                        match policy.decide(i * 2, p.generation, p.declare_at) {
                            DeclarationVerdict::Declare => verdicts.0 += 1,
                            DeclarationVerdict::Hold { .. } => verdicts.1 += 1,
                            DeclarationVerdict::Cancel => verdicts.2 += 1,
                        }
                    }
                    verdicts
                })
            });
            // Departure bookkeeping: a down/up cycle per node per iteration.
            group.bench_function(format!("down_up/{label}/{nodes}_nodes"), |b| {
                let mut t = 2_000u64;
                b.iter(|| {
                    t += 1;
                    let mut declare_sum = 0u64;
                    for node in 0..nodes {
                        let p = policy.node_down(node, SimTime::from_secs(t));
                        declare_sum = declare_sum.wrapping_add(p.declare_at.as_nanos());
                        policy.node_up(node, SimTime::from_secs(t + 1));
                    }
                    declare_sum
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_detector_decide);
criterion_main!(benches);
