//! # PeerStripe — contributory storage for desktop grids
//!
//! A Rust reproduction of *"On Utilization of Contributory Storage in Desktop
//! Grids"* (Miller, Butler, Shah, Butt): a peer-to-peer storage system that
//! harnesses the disk space contributed by desktop-grid participants, stripes
//! large files into varying-size chunks sized by `getCapacity` probes, erasure
//! codes each chunk, and multicasts replicas over locality-aware trees.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`](peerstripe_core) — the PeerStripe system itself;
//! * [`overlay`](peerstripe_overlay) — the Pastry-semantics DHT simulator;
//! * [`erasure`](peerstripe_erasure) — Null / XOR / online erasure codes;
//! * [`placement`](peerstripe_placement) — failure-domain topology & placement strategies;
//! * [`multicast`](peerstripe_multicast) — RanSub + Bullet replica dissemination;
//! * [`net`](peerstripe_net) — the networked deployment path: framed wire
//!   protocol, `peerstripe-node` daemon, and the TCP gateway backend;
//! * [`trace`](peerstripe_trace) — workload and capacity generators;
//! * [`baselines`](peerstripe_baselines) — PAST and CFS comparison systems;
//! * [`gridsim`](peerstripe_gridsim) — the Condor `bigCopy` case study;
//! * [`experiments`](peerstripe_experiments) — drivers for every table/figure;
//! * [`telemetry`](peerstripe_telemetry) — metrics registry, event tracing, profiling;
//! * [`sim`](peerstripe_sim) — deterministic RNG, distributions, statistics.
//!
//! ## Quick start
//!
//! ```
//! use peerstripe::core::{ClusterConfig, PeerStripe, PeerStripeConfig, StorageSystem};
//! use peerstripe::sim::{ByteSize, DetRng};
//! use peerstripe::trace::FileRecord;
//!
//! // 64 desktops contributing ~45 GB each join the overlay.
//! let mut rng = DetRng::new(7);
//! let cluster = ClusterConfig::scaled(64).build(&mut rng);
//! let mut storage = PeerStripe::new(cluster, PeerStripeConfig::default());
//!
//! // Store a 100 GB dataset: far larger than any single contributor.
//! let outcome = storage.store_file(&FileRecord::new("climate-model.nc", ByteSize::gb(100)));
//! assert!(outcome.is_stored());
//! assert!(storage.is_file_available("climate-model.nc"));
//! ```

pub use peerstripe_baselines as baselines;
pub use peerstripe_core as core;
pub use peerstripe_erasure as erasure;
pub use peerstripe_experiments as experiments;
pub use peerstripe_gridsim as gridsim;
pub use peerstripe_multicast as multicast;
pub use peerstripe_net as net;
pub use peerstripe_overlay as overlay;
pub use peerstripe_placement as placement;
pub use peerstripe_repair as repair;
pub use peerstripe_sim as sim;
pub use peerstripe_telemetry as telemetry;
pub use peerstripe_trace as trace;
