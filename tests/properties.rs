//! Property-based tests (proptest) over the public API: invariants that must
//! hold for arbitrary inputs, not just the hand-picked cases of the unit tests.

use peerstripe::core::churn::{AvailabilityTracker, RegenerationSim};
use peerstripe::core::{
    ChunkAllocationTable, ClusterConfig, CodingPolicy, ObjectName, PeerStripe, PeerStripeConfig,
    StorageSystem,
};
use peerstripe::erasure::{ErasureCode, NullCode, OnlineCode, ReedSolomonCode, XorCode};
use peerstripe::overlay::{Id, IdRing};
use peerstripe::placement::{DomainSpread, Topology};
use peerstripe::repair::{
    ChurnProcess, DeclarationVerdict, DetectionKind, DetectionPolicy, DetectorConfig, GroupedChurn,
    MaintenanceEngine, OutageAware, OutageAwareConfig, RepairConfig, RepairPolicy, SessionModel,
};
use peerstripe::sim::{ByteSize, DetRng, OnlineStats, SimTime};
use peerstripe::trace::{CapacityModel, FileRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- erasure codes -------------------------------------------------------

    /// The XOR parity code decodes the original chunk from any survivor set that
    /// loses at most one block per parity group.
    #[test]
    fn xor_code_round_trips_with_one_loss_per_group(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        group in 2usize..5,
        drop_choice in any::<u64>(),
    ) {
        let blocks = group * 4;
        let code = XorCode::new(group, blocks);
        let encoded = code.encode(&data);
        // Drop one block from every group, chosen by the fuzzed seed.
        let mut rng = DetRng::new(drop_choice);
        let mut dropped = std::collections::HashSet::new();
        for g in 0..code.groups() {
            let members: Vec<u32> = encoded
                .iter()
                .map(|b| b.index)
                .filter(|&i| code.group_of(i as usize) == g)
                .collect();
            dropped.insert(*rng.choose(&members).unwrap());
        }
        let surviving: Vec<_> = encoded.iter().filter(|b| !dropped.contains(&b.index)).cloned().collect();
        prop_assert_eq!(code.decode(&surviving, data.len()).unwrap(), data);
    }

    /// The NULL code is an exact pass-through for arbitrary data and block counts.
    #[test]
    fn null_code_round_trips(
        data in proptest::collection::vec(any::<u8>(), 0..8192),
        blocks in 1usize..64,
    ) {
        let code = NullCode::new(blocks);
        let encoded = code.encode(&data);
        prop_assert_eq!(encoded.len(), blocks);
        prop_assert_eq!(code.decode(&encoded, data.len()).unwrap(), data);
    }

    /// The online code decodes arbitrary data from its full check-block set.
    #[test]
    fn online_code_round_trips(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
    ) {
        let code = OnlineCode::with_overhead(128, 0.01, 3, 1.15);
        let encoded = code.encode(&data);
        prop_assert_eq!(code.decode(&encoded, data.len()).unwrap(), data);
    }

    /// Every codec encode/decode round-trips from the full block set at
    /// arbitrary chunk sizes, including lengths that are not a multiple of the
    /// source-block count (exercising the zero-padding path).
    #[test]
    fn every_codec_round_trips_at_arbitrary_sizes(
        data in proptest::collection::vec(any::<u8>(), 1..6000),
        pick in 0usize..4,
    ) {
        let codecs: [Box<dyn ErasureCode>; 4] = [
            Box::new(NullCode::new(7)),
            Box::new(XorCode::new(2, 8)),
            Box::new(OnlineCode::with_overhead(64, 0.01, 3, 1.25)),
            Box::new(ReedSolomonCode::new(11, 4)),
        ];
        let code = &codecs[pick];
        let encoded = code.encode(&data);
        prop_assert_eq!(encoded.len(), code.encoded_blocks());
        prop_assert_eq!(code.decode(&encoded, data.len()).unwrap(), data);
    }

    /// Reed-Solomon optimality, exhaustively: for arbitrary data and geometry,
    /// *every* subset of exactly `min_decode_blocks()` = `data` blocks decodes
    /// the original chunk — the any-n-of-m guarantee no sub-optimal codec in
    /// this workspace can make.
    #[test]
    fn rs_recovers_from_every_minimal_subset(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        n in 2usize..6,
        parity in 1usize..4,
    ) {
        let code = ReedSolomonCode::new(n, parity);
        let encoded = code.encode(&data);
        let m = code.encoded_blocks();
        prop_assert_eq!(code.min_decode_blocks(), n);
        for mask in 0u32..1 << m {
            if mask.count_ones() as usize != n {
                continue;
            }
            let subset: Vec<_> = encoded
                .iter()
                .filter(|b| mask & (1 << b.index) != 0)
                .cloned()
                .collect();
            prop_assert_eq!(
                code.decode(&subset, data.len()).unwrap(),
                data.clone(),
                "RS({}, {}) failed on subset {:b}", n, m, mask
            );
        }
    }

    /// The wide-lane `nibble64` GF(256) kernel is byte-identical to the scalar
    /// reference kernel for **all** 256 coefficients over arbitrary slice
    /// lengths — including empty slices and non-multiple-of-8/16/32 tails,
    /// which exercise every lane's scalar tail path.
    #[test]
    fn nibble64_kernel_matches_scalar_for_all_coefficients(
        src in proptest::collection::vec(any::<u8>(), 0..1024),
        acc in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        use peerstripe::erasure::gf256::{mul_add_slice_with, mul_slice_with};
        use peerstripe::erasure::Gf256Kernel;
        let len = src.len().min(acc.len());
        let (src, acc) = (&src[..len], &acc[..len]);
        for c in 0..=255u8 {
            let mut scalar = vec![0u8; len];
            mul_slice_with(Gf256Kernel::Scalar, c, src, &mut scalar);
            let mut fast = vec![0xA5u8; len];
            mul_slice_with(Gf256Kernel::Nibble64, c, src, &mut fast);
            prop_assert_eq!(&scalar, &fast, "mul c = {}", c);

            let mut scalar_acc = acc.to_vec();
            mul_add_slice_with(Gf256Kernel::Scalar, c, src, &mut scalar_acc);
            let mut fast_acc = acc.to_vec();
            mul_add_slice_with(Gf256Kernel::Nibble64, c, src, &mut fast_acc);
            prop_assert_eq!(&scalar_acc, &fast_acc, "mul_add c = {}", c);
        }
    }

    /// Reed–Solomon blocks are kernel-independent: both kernels encode the
    /// same bytes, each kernel decodes the other's blocks from an arbitrary
    /// minimal subset, and the column-stripe parallel/pipeline paths agree
    /// with serial — so stored artifacts never depend on the encoding host.
    #[test]
    fn rs_round_trips_identically_across_kernels(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        n in 2usize..7,
        parity in 1usize..4,
        workers in 2usize..5,
        subset_seed in any::<u64>(),
    ) {
        use peerstripe::erasure::Gf256Kernel;
        let scalar = ReedSolomonCode::new(n, parity).with_kernel(Gf256Kernel::Scalar);
        let fast = ReedSolomonCode::new(n, parity).with_kernel(Gf256Kernel::Nibble64);
        let encoded = scalar.encode_serial(&data);
        prop_assert_eq!(&encoded, &fast.encode_serial(&data));
        prop_assert_eq!(&encoded, &fast.encode_with_workers(&data, workers));
        prop_assert_eq!(&encoded, &fast.encode_via_stripes(&data, 512, workers));
        // An arbitrary minimal subset decodes under both kernels.
        let mut rng = DetRng::new(subset_seed);
        let subset: Vec<_> = rng
            .sample_indices(encoded.len(), n)
            .into_iter()
            .map(|i| encoded[i].clone())
            .collect();
        prop_assert_eq!(scalar.decode(&subset, data.len()).unwrap(), data.clone());
        prop_assert_eq!(fast.decode(&subset, data.len()).unwrap(), data);
    }

    // ---- identifier ring -----------------------------------------------------

    /// Ring routing always returns the live node at minimum circular distance.
    #[test]
    fn ring_route_matches_brute_force(
        ids in proptest::collection::hash_set(any::<u128>(), 1..64),
        key in any::<u128>(),
    ) {
        let mut ring = IdRing::new();
        for (i, &id) in ids.iter().enumerate() {
            ring.insert(Id(id), i);
        }
        let key = Id(key);
        let (routed, _) = ring.route(key).unwrap();
        let best = ids.iter().map(|&id| key.distance(Id(id))).min().unwrap();
        prop_assert_eq!(routed.distance(key), best);
    }

    /// k_closest returns distinct members sorted by circular distance, and its
    /// first element agrees with route().
    #[test]
    fn k_closest_is_sorted_and_distinct(
        ids in proptest::collection::hash_set(any::<u128>(), 2..64),
        key in any::<u128>(),
        k in 1usize..16,
    ) {
        let mut ring = IdRing::new();
        for (i, &id) in ids.iter().enumerate() {
            ring.insert(Id(id), i);
        }
        let key = Id(key);
        let closest = ring.k_closest(key, k);
        prop_assert_eq!(closest.len(), k.min(ids.len()));
        for w in closest.windows(2) {
            prop_assert!(key.distance(w[0].0) <= key.distance(w[1].0));
        }
        let unique: std::collections::HashSet<_> = closest.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(unique.len(), closest.len());
        prop_assert_eq!(closest[0].0, ring.route(key).unwrap().0);
    }

    // ---- naming & CAT --------------------------------------------------------

    /// Object names render/parse round-trip for any file name without the
    /// reserved separators.
    #[test]
    fn object_names_round_trip(
        file in "[a-zA-Z][a-zA-Z0-9.-]{0,24}",
        chunk in 0u32..10_000,
        ecb in 0u32..10_000,
    ) {
        let names = [
            ObjectName::chunk(&file, chunk),
            ObjectName::block(&file, chunk, ecb),
            ObjectName::cat(&file),
            ObjectName::whole_file(&file, ecb),
        ];
        for n in names {
            prop_assert_eq!(ObjectName::parse(&n.render()), Some(n));
        }
    }

    /// A CAT built from arbitrary chunk sizes is contiguous, reports the exact
    /// file size, maps every in-range offset to the chunk containing it, and
    /// round-trips through its textual form.
    #[test]
    fn cat_invariants(sizes in proptest::collection::vec(0u64..50_000_000, 0..40)) {
        let sizes: Vec<ByteSize> = sizes.into_iter().map(ByteSize::bytes).collect();
        let cat = ChunkAllocationTable::from_chunk_sizes(&sizes);
        let total: u64 = sizes.iter().map(|s| s.as_u64()).sum();
        prop_assert_eq!(cat.file_size().as_u64(), total);
        // Extents are contiguous and in order.
        let mut expected_start = 0;
        for e in cat.extents() {
            prop_assert_eq!(e.start, expected_start);
            expected_start = e.end;
        }
        // Offset lookup returns a chunk containing the offset.
        if total > 0 {
            for probe in [0, total / 2, total - 1] {
                let extent = cat.chunk_for_offset(probe).unwrap();
                prop_assert!(extent.contains(probe));
            }
            prop_assert!(cat.chunk_for_offset(total).is_none());
        }
        prop_assert_eq!(ChunkAllocationTable::parse(&cat.render()).unwrap(), cat);
    }

    // ---- statistics ----------------------------------------------------------

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)) {
        let mut stats = OnlineStats::new();
        for &v in &values {
            stats.push(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    // ---- byte sizes ----------------------------------------------------------

    /// ByteSize arithmetic is saturating and ordering-consistent.
    #[test]
    fn bytesize_arithmetic(a in any::<u64>(), b in any::<u64>()) {
        let x = ByteSize::bytes(a);
        let y = ByteSize::bytes(b);
        prop_assert_eq!((x + y).as_u64(), a.saturating_add(b));
        prop_assert_eq!((x - y).as_u64(), a.saturating_sub(b));
        prop_assert_eq!(x.min(y).as_u64(), a.min(b));
        prop_assert_eq!(x.max(y).as_u64(), a.max(b));
        prop_assert_eq!(x < y, a < b);
    }
}

proptest! {
    // Store/retrieve round trips run a full system per case, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any payload stored through the byte path reads back identically, both in
    /// full and over arbitrary sub-ranges.
    #[test]
    fn store_retrieve_round_trips(
        data in proptest::collection::vec(any::<u8>(), 1..200_000),
        offset_frac in 0.0f64..1.0,
        len in 0u64..50_000,
        coding_pick in 0usize..4,
    ) {
        let coding = [
            CodingPolicy::None,
            CodingPolicy::xor_2_3(),
            CodingPolicy::online_default(),
            CodingPolicy::rs_default(),
        ][coding_pick];
        let mut rng = DetRng::new(77);
        let cluster = ClusterConfig {
            nodes: 24,
            capacity: CapacityModel::Fixed(ByteSize::mb(64)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(coding));
        prop_assert!(ps.store_data("payload", &data).is_stored());
        prop_assert_eq!(ps.retrieve_data("payload").unwrap(), data.clone());
        let offset = (offset_frac * data.len() as f64) as u64;
        let expected_end = (offset + len).min(data.len() as u64) as usize;
        let expected = &data[offset.min(data.len() as u64) as usize..expected_end];
        prop_assert_eq!(ps.retrieve_range_data("payload", offset, len).unwrap(), expected.to_vec());
    }

    /// Under arbitrary failure sequences, the regeneration simulation conserves
    /// its tracked bytes, its per-failure accounts sum to consistent totals,
    /// and losses never exceed what was tracked.
    #[test]
    fn regeneration_conserves_tracked_bytes(
        failure_seed in any::<u64>(),
        fail_count in 1usize..30,
    ) {
        let mut rng = DetRng::new(91);
        let cluster = ClusterConfig {
            nodes: 60,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(
            cluster,
            PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
        );
        for i in 0..30 {
            prop_assert!(ps
                .store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::mb(256), 30.0);
        let tracked_before = sim.tracked_bytes();
        let mut fail_rng = DetRng::new(failure_seed);
        let mut total_lost = ByteSize::ZERO;
        let mut total_regen = ByteSize::ZERO;
        for _ in 0..fail_count {
            let Some(node) = ps.cluster().overlay().random_alive(&mut fail_rng) else {
                break;
            };
            ps.cluster_mut().fail_node(node);
            let account = sim.fail_node(node, ps.cluster_mut(), &mut fail_rng);
            total_lost += account.lost;
            total_regen += account.regenerated;
            // Tracked user bytes are conserved: failures write chunks off but
            // never change what the ledger covers.
            prop_assert_eq!(sim.tracked_bytes(), tracked_before);
            prop_assert!(total_lost <= tracked_before);
        }
        // Every regenerated block landed in the ledger on some node.
        let ledger = sim.ledger();
        let mut lost_ledger = ByteSize::ZERO;
        for chunk in 0..ledger.chunk_count() as u32 {
            if ledger.is_lost(chunk) {
                lost_ledger += ledger.chunk_size(chunk);
            }
        }
        prop_assert_eq!(lost_ledger, total_lost);
    }

    /// The availability tracker's unavailable percentage stays inside [0, 100]
    /// and never decreases under arbitrary failure sequences (including
    /// repeated and unknown node references).
    #[test]
    fn unavailable_pct_is_bounded_and_monotone(
        failures in proptest::collection::vec(any::<u16>(), 1..60),
    ) {
        let mut rng = DetRng::new(92);
        let cluster = ClusterConfig {
            nodes: 50,
            capacity: CapacityModel::Fixed(ByteSize::gb(1)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(
            cluster,
            PeerStripeConfig::default().with_coding(CodingPolicy::xor_2_3()),
        );
        for i in 0..20 {
            prop_assert!(ps
                .store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(150)))
                .is_stored());
        }
        let mut tracker = AvailabilityTracker::build(ps.manifests());
        let sizes = AvailabilityTracker::file_sizes(ps.manifests());
        let mut last_pct = tracker.unavailable_pct();
        prop_assert_eq!(last_pct, 0.0);
        for f in failures {
            // Arbitrary node references: in-range ones fail real nodes
            // (possibly repeatedly), out-of-range ones must be no-ops.
            let node = f as usize;
            if node < ps.cluster().node_count() {
                ps.cluster_mut().fail_node(node);
            }
            tracker.fail_node(node, &sizes);
            let pct = tracker.unavailable_pct();
            prop_assert!((0.0..=100.0).contains(&pct), "pct {pct}");
            prop_assert!(pct >= last_pct - 1e-12, "pct must not decrease");
            prop_assert!(tracker.files_unavailable() <= tracker.files_total());
            last_pct = pct;
        }
    }

    /// Failure-domain invariant: under the `DomainSpread` strategy, for
    /// arbitrary topologies (grouped or hierarchical) and every coding policy,
    /// no stored chunk ever keeps more blocks in one domain than the policy
    /// tolerates losing — and when the constraint cannot be met, the store
    /// fails loudly instead of silently violating it.
    #[test]
    fn domain_spread_never_exceeds_the_cap(
        group_size in 2usize..10,
        hierarchical in any::<bool>(),
        coding_pick in 0usize..4,
        topo_seed in any::<u64>(),
        files in 3usize..8,
    ) {
        let nodes = 48;
        let coding = [
            CodingPolicy::None,
            CodingPolicy::xor_2_3(),
            CodingPolicy::online_default(),
            CodingPolicy::rs_default(),
        ][coding_pick];
        let topo = if hierarchical {
            Topology::synthetic(nodes, 2, (nodes / group_size / 2).max(1), topo_seed)
        } else {
            Topology::uniform_groups(nodes, group_size)
        };
        let mut rng = DetRng::new(topo_seed ^ 0x51ab);
        let cluster = ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(ByteSize::gb(1)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::with_placement(
            cluster,
            PeerStripeConfig::default().with_coding(coding),
            Box::new(DomainSpread::new()),
            Some(topo.clone()),
        );
        let cap = ps.domain_cap();
        prop_assert_eq!(cap, coding.tolerable_losses().max(1));
        for i in 0..files {
            let outcome = ps.store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(120)));
            if !outcome.is_stored() {
                // The loud path: refused outright, nothing partial recorded.
                prop_assert!(ps.manifest(&format!("f{i}")).is_none());
                continue;
            }
            let manifest = ps.manifest(&format!("f{i}")).unwrap();
            for chunk in manifest.chunks.iter().filter(|c| !c.size.is_zero()) {
                let mut counts = std::collections::HashMap::new();
                for b in &chunk.blocks {
                    prop_assert_eq!(b.domain, topo.domain_of(b.node), "recorded domain");
                    if let Some(d) = b.domain {
                        *counts.entry(d).or_insert(0usize) += 1;
                    }
                }
                let worst = counts.values().copied().max().unwrap_or(0);
                prop_assert!(
                    worst <= cap,
                    "chunk {} holds {} blocks in one domain (cap {}) under {}",
                    chunk.chunk, worst, cap, coding.label()
                );
            }
        }
    }

    /// Storing arbitrary file sizes never loses accounting: placed bytes are at
    /// least the stored user bytes, and failed stores leave utilization unchanged.
    #[test]
    fn store_accounting_invariants(sizes in proptest::collection::vec(1u64..5_000_000_000u64, 1..12)) {
        let mut rng = DetRng::new(88);
        let cluster = ClusterConfig {
            nodes: 30,
            capacity: CapacityModel::Fixed(ByteSize::gb(1)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default());
        for (i, size) in sizes.iter().enumerate() {
            let before = ps.cluster().total_used();
            let outcome = ps.store_file(&FileRecord::new(format!("f{i}"), ByteSize::bytes(*size)));
            let after = ps.cluster().total_used();
            if outcome.is_stored() {
                prop_assert!(after >= before);
            } else {
                prop_assert_eq!(after, before, "failed stores must roll back completely");
            }
        }
        let m = ps.metrics();
        prop_assert!(m.bytes_placed >= m.bytes_stored);
        prop_assert_eq!(m.bytes_attempted, m.bytes_stored + m.bytes_failed);
    }

    /// Grouped-churn conservation: whole-domain outage events touch exactly
    /// the members of their domain (every down node sits in a domain whose
    /// outage is still active), nothing is lost or repaired when nothing is
    /// ever declared dead, and the engine's incremental availability
    /// accounting balances against a full recomputation after arbitrary
    /// outage schedules.
    #[test]
    fn grouped_churn_conserves_and_touches_only_members(
        group_size in 3usize..12,
        interval_hours in 4.0f64..10.0,
        downtime_hours in 2.0f64..8.0,
        seed in any::<u64>(),
    ) {
        let nodes = 48;
        let mut rng = DetRng::new(seed ^ 0x6a09);
        let cluster = ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(
            cluster,
            PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
        );
        for i in 0..20 {
            prop_assert!(ps
                .store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(100)))
                .is_stored());
        }
        let manifests = ps.manifests().clone();
        let topo = Topology::uniform_groups(nodes, group_size);
        let churn = ChurnProcess {
            // Individual sessions far beyond the horizon: every departure in
            // this run is a group event.
            sessions: SessionModel::Synthetic {
                mean_session_secs: 1e12,
                mean_downtime_secs: 3_600.0,
            },
            permanent_fraction: 0.0,
            grouped: Some(GroupedChurn::new(
                topo.clone(),
                interval_hours,
                downtime_hours,
            )),
        };
        let config = RepairConfig {
            policy: RepairPolicy::Eager,
            // Permanence timeout beyond any outage: nothing is declared dead.
            detector: DetectorConfig::default_desktop_grid().with_timeout(1e9),
            detection: DetectionKind::PerNodeTimeout,
            bandwidth: peerstripe::repair::BandwidthBudget::symmetric(ByteSize::mb(4)),
            sample_period_secs: 3_600.0,
        };
        let mut engine =
            MaintenanceEngine::new(ps.into_cluster(), &manifests, churn, config, seed);
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        prop_assert!(report.group_outages > 0, "outages must fire: {report:?}");
        prop_assert_eq!(report.transient_departures, 0);
        prop_assert_eq!(report.permanent_failures, 0);
        // Conservation: transient group churn with no declarations loses
        // nothing and moves no repair bytes.
        prop_assert_eq!(report.files_lost, 0);
        prop_assert_eq!(report.repair_bytes, ByteSize::ZERO);
        prop_assert!(engine.accounting_is_consistent(), "accounting must balance");
        // Group events touch exactly their members: any node down right now
        // belongs to a domain whose outage is still active.
        for node in 0..nodes {
            if !engine.cluster().overlay().is_alive(node) {
                let domain = topo.domain_of(node).expect("topology is total");
                prop_assert!(
                    engine.group_outage_active(domain),
                    "node {} down outside an outage of domain {}",
                    node,
                    domain
                );
            }
        }
    }

    /// Outage-aware liveness bound: however the topology, threshold and hold
    /// tuning are chosen, a genuinely permanent departure (nobody ever
    /// returns) is declared no later than `permanence_timeout + hold_cap`
    /// after it happened — and the hold chain always terminates.
    #[test]
    fn outage_aware_declares_by_the_hold_cap(
        nodes in 6usize..40,
        group_size in 2usize..10,
        theta in 0.05f64..1.0,
        timeout_hours in 0.5f64..24.0,
        hold_cap_hours in 0.0f64..48.0,
        hold_period_hours in 0.1f64..6.0,
        down_at_secs in 0.0f64..100_000.0,
    ) {
        let topo = Topology::uniform_groups(nodes, group_size);
        let detector = DetectorConfig::default_desktop_grid()
            .with_timeout(timeout_hours * 3_600.0);
        let mut policy = OutageAware::new(
            nodes,
            detector,
            topo.domain_view(),
            OutageAwareConfig {
                domain_absence_threshold: theta,
                outage_window_secs: 600.0,
                hold_period_secs: hold_period_hours * 3_600.0,
                hold_cap_secs: hold_cap_hours * 3_600.0,
            },
        );
        // The worst case for outage classification: the entire population
        // departs at one instant and nobody ever returns.
        let down_at = SimTime::from_secs_f64(down_at_secs);
        let pendings: Vec<_> = (0..nodes).map(|n| (n, policy.node_down(n, down_at))).collect();
        let deadline = down_at
            + SimTime::from_secs_f64(timeout_hours * 3_600.0)
            + SimTime::from_secs_f64(hold_cap_hours * 3_600.0);
        for (node, p) in pendings {
            let mut now = p.declare_at;
            let mut steps = 0;
            loop {
                match policy.decide(node, p.generation, now) {
                    DeclarationVerdict::Hold { until } => {
                        prop_assert!(until > now, "node {}: hold must advance", node);
                        prop_assert!(
                            until <= deadline,
                            "node {}: hold to {:?} passes the cap {:?}",
                            node, until, deadline
                        );
                        now = until;
                        steps += 1;
                        prop_assert!(steps < 2_000, "node {}: unbounded hold chain", node);
                    }
                    DeclarationVerdict::Declare => break,
                    DeclarationVerdict::Cancel => {
                        prop_assert!(false, "node {}: nothing ever returned", node);
                    }
                }
            }
            prop_assert!(
                now <= deadline,
                "node {} declared at {:?}, after permanence_timeout + hold_cap ({:?})",
                node, now, deadline
            );
        }
    }

    /// Equivalence of the extracted per-node policy: with no domain
    /// information, the outage-aware policy can never classify an outage, so
    /// an engine running it must reproduce the per-node engine event for
    /// event — same declarations, same repair bill, same losses.
    #[test]
    fn unaffiliated_outage_aware_matches_per_node(
        seed in any::<u64>(),
        permanent_fraction in 0.0f64..0.1,
    ) {
        let run = |detection: DetectionKind| {
            let mut rng = DetRng::new(seed ^ 0x0f0f);
            let cluster = ClusterConfig {
                nodes: 40,
                capacity: CapacityModel::Fixed(ByteSize::gb(2)),
                report_fraction: 1.0,
                track_objects: true,
            }
            .build(&mut rng);
            let mut ps = PeerStripe::new(
                cluster,
                PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
            );
            for i in 0..16 {
                assert!(ps
                    .store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(100)))
                    .is_stored());
            }
            let manifests = ps.manifests().clone();
            let churn = ChurnProcess {
                sessions: SessionModel::Synthetic {
                    mean_session_secs: 4.0 * 3_600.0,
                    mean_downtime_secs: 3.0 * 3_600.0,
                },
                permanent_fraction,
                // No grouped churn: the engine wires an unaffiliated domain
                // view into the detector.
                grouped: None,
            };
            let config = RepairConfig {
                policy: RepairPolicy::Eager,
                // Aggressive timeout so declarations actually happen.
                detector: DetectorConfig::default_desktop_grid().with_timeout(3_600.0),
                detection,
                bandwidth: peerstripe::repair::BandwidthBudget::symmetric(ByteSize::mb(4)),
                sample_period_secs: 3_600.0,
            };
            let mut engine =
                MaintenanceEngine::new(ps.into_cluster(), &manifests, churn, config, seed);
            engine.run_for(SimTime::from_secs(36 * 3_600));
            engine.report()
        };
        let per_node = run(DetectionKind::PerNodeTimeout);
        let aware = run(DetectionKind::OutageAware(
            OutageAwareConfig::default_desktop_grid(),
        ));
        prop_assert_eq!(per_node.events, aware.events);
        prop_assert_eq!(per_node.repair_bytes, aware.repair_bytes);
        prop_assert_eq!(per_node.wasted_repair_bytes, aware.wasted_repair_bytes);
        prop_assert_eq!(per_node.files_lost, aware.files_lost);
        prop_assert_eq!(per_node.false_declarations, aware.false_declarations);
        prop_assert_eq!(aware.declarations_held, 0);
        prop_assert_eq!(aware.held_cancelled, 0);
    }

    /// Held declarations cancelled by a domain return leak nothing: pure
    /// grouped churn under an outage-aware detector with an unbounded hold
    /// cap never writes a block off, never spends a repair byte, and never
    /// loses a file — every hold either cancels on the domain's return or is
    /// still pending at the horizon.
    #[test]
    fn cancelled_holds_leak_no_repair_traffic(
        group_size in 3usize..12,
        interval_hours in 4.0f64..10.0,
        downtime_hours in 2.0f64..8.0,
        theta in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let nodes = 48;
        let mut rng = DetRng::new(seed ^ 0x77aa);
        let cluster = ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(
            cluster,
            PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
        );
        for i in 0..20 {
            prop_assert!(ps
                .store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(100)))
                .is_stored());
        }
        let manifests = ps.manifests().clone();
        let topo = Topology::uniform_groups(nodes, group_size);
        let churn = ChurnProcess {
            // Individual sessions far beyond the horizon: every departure is
            // a group event, and every absence is outage-correlated.
            sessions: SessionModel::Synthetic {
                mean_session_secs: 1e12,
                mean_downtime_secs: 3_600.0,
            },
            permanent_fraction: 0.0,
            grouped: Some(GroupedChurn::new(topo, interval_hours, downtime_hours)),
        };
        let config = RepairConfig {
            policy: RepairPolicy::Eager,
            // A 10-minute permanence timeout: the per-node policy would write
            // whole domains off on every outage.
            detector: DetectorConfig::default_desktop_grid().with_timeout(600.0),
            detection: DetectionKind::OutageAware(OutageAwareConfig {
                domain_absence_threshold: theta,
                outage_window_secs: 600.0,
                hold_period_secs: 1_800.0,
                // Unbounded hold cap: every declaration is held until its
                // domain returns.
                hold_cap_secs: 1e12,
            }),
            bandwidth: peerstripe::repair::BandwidthBudget::symmetric(ByteSize::mb(4)),
            sample_period_secs: 3_600.0,
        };
        let mut engine =
            MaintenanceEngine::new(ps.into_cluster(), &manifests, churn, config, seed);
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        prop_assert!(report.group_outages > 0, "outages must fire: {report:?}");
        prop_assert!(
            report.declarations_held > 0,
            "10-minute timeout vs multi-hour outages must hold: {report:?}"
        );
        // The leak-freedom claim: no write-offs, no repair traffic, no loss.
        prop_assert_eq!(report.false_declarations, 0);
        prop_assert_eq!(report.repair_bytes, ByteSize::ZERO);
        prop_assert_eq!(report.wasted_repair_bytes, ByteSize::ZERO);
        prop_assert_eq!(report.files_lost, 0);
        prop_assert!(
            report.held_cancelled <= report.declarations_held,
            "cancellations cannot exceed holds: {report:?}"
        );
        prop_assert!(engine.accounting_is_consistent(), "accounting must balance");
    }
}

// ---- telemetry ----------------------------------------------------------

/// Build a histogram over the standard byte-size buckets from fuzzed samples.
fn histogram_of(samples: &[f64]) -> peerstripe::telemetry::Histogram {
    let mut h = peerstripe::telemetry::Histogram::new(&[1e2, 1e4, 1e6, 1e8]);
    for &s in samples {
        h.observe(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram merge is commutative and associative over same-bucket
    /// histograms: sweep cells can be aggregated in any order (or grouping)
    /// without changing the exported distribution.
    #[test]
    fn histogram_merge_is_order_free(
        a in proptest::collection::vec(0.0f64..1e9, 0..64),
        b in proptest::collection::vec(0.0f64..1e9, 0..64),
        c in proptest::collection::vec(0.0f64..1e9, 0..64),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        // Commutativity: a ∪ b == b ∪ a.
        let mut ab = ha.clone();
        prop_assert!(ab.merge(&hb).is_ok());
        let mut ba = hb.clone();
        prop_assert!(ba.merge(&ha).is_ok());
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.sum() - ba.sum()).abs() <= 1e-6 * ab.sum().abs().max(1.0));

        // Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut left = ab;
        prop_assert!(left.merge(&hc).is_ok());
        let mut bc = hb.clone();
        prop_assert!(bc.merge(&hc).is_ok());
        let mut right = ha.clone();
        prop_assert!(right.merge(&bc).is_ok());
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-6 * left.sum().abs().max(1.0));

        // And the merged totals are exactly the sample counts.
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
    }

    /// Merging histograms with different bucket layouts must refuse rather
    /// than silently mis-bin.
    #[test]
    fn histogram_merge_rejects_mismatched_buckets(samples in proptest::collection::vec(0.0f64..1e6, 1..16)) {
        let mut h = histogram_of(&samples);
        let other = peerstripe::telemetry::Histogram::new(&[1.0, 2.0]);
        prop_assert!(h.merge(&other).is_err());
    }
}
