//! Smoke test mirroring `examples/quickstart.rs`: the store → retrieve →
//! fail → recover walkthrough must keep succeeding on a small cluster, so the
//! shipped example cannot silently rot. (`cargo build --examples` keeps the
//! other examples compiling; this exercises the quickstart *logic*.)

use peerstripe::core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::experiments::cli::run_experiment;
use peerstripe::experiments::Scale;
use peerstripe::sim::{ByteSize, DetRng};
use peerstripe::trace::{CapacityModel, FileRecord};

#[test]
fn quickstart_store_retrieve_on_small_cluster() {
    // Same shape as the example: a small pool of modest contributors.
    let mut rng = DetRng::new(2026);
    let cluster = ClusterConfig {
        nodes: 64,
        capacity: CapacityModel::Uniform {
            lo: ByteSize::mb(64),
            hi: ByteSize::mb(256),
        },
        report_fraction: 1.0,
        track_objects: true,
    }
    .build(&mut rng);
    assert_eq!(cluster.node_count(), 64);

    let mut storage = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(CodingPolicy::xor_2_3()),
    );

    // Store real bytes (1 MB keeps the test fast; the example uses 4 MB).
    let image: Vec<u8> = (0..1024 * 1024u32)
        .map(|i| ((i.wrapping_mul(2654435761)) >> 24) as u8)
        .collect();
    let outcome = storage.store_data("mri-scan-0007", &image);
    assert!(outcome.is_stored());

    let manifest = storage
        .manifest("mri-scan-0007")
        .expect("manifest recorded");
    assert!(!manifest.chunks.is_empty());
    assert!(!manifest.cat_nodes.is_empty());

    // Range read touches only the chunks covering the range.
    let slice = storage
        .retrieve_range_data("mri-scan-0007", 500_000, 64)
        .expect("range read");
    assert_eq!(slice, &image[500_000..500_064]);

    // Fail a node holding a block: the file stays available, the lost blocks
    // are regenerated, and the payload still reads back bit-for-bit.
    let victim = manifest.chunks[0].blocks[0].node;
    let takeover = storage.cluster_mut().fail_node(victim).expect("takeover");
    assert!(storage.is_file_available("mri-scan-0007"));
    storage.handle_node_failure(victim, &takeover);
    let restored = storage.retrieve_data("mri-scan-0007").expect("full read");
    assert_eq!(restored, image);

    // Metadata-only path: a file far larger than any single contributor.
    let big = FileRecord::new("climate-ensemble.tar", ByteSize::gb(2));
    assert!(storage.store_file(&big).is_stored());
    assert!(storage.is_file_available("climate-ensemble.tar"));
    let chunks = storage
        .manifest("climate-ensemble.tar")
        .unwrap()
        .chunks
        .len();
    assert!(
        chunks > 1,
        "a 2 GB file must stripe over multiple chunks, got {chunks}"
    );
}

/// The `repro` erasure-coding drivers keep producing their reports: `table2`
/// must carry all four codec rows (including the optimal Reed-Solomon row)
/// and `rs-sweep` must report full minimal-subset recovery.  Exercises the
/// same dispatch the `repro` binary runs.
#[test]
fn repro_table2_and_rs_sweep_at_small_scale() {
    let table2 = run_experiment("table2", Scale::Small, 42).expect("table2 is a known experiment");
    for code in ["Null", "XOR", "Online", "ReedSolomon"] {
        assert!(
            table2.contains(code),
            "Table 2 lost its {code} row:\n{table2}"
        );
    }
    assert!(
        table2.contains("Min-decode"),
        "minimal-subset column missing"
    );

    let sweep =
        run_experiment("rs-sweep", Scale::Small, 42).expect("rs-sweep is a known experiment");
    assert!(sweep.contains("ReedSolomon"), "sweep report:\n{sweep}");
    assert!(
        sweep.contains("100%"),
        "RS must recover from every minimal subset:\n{sweep}"
    );
}

/// The continuous-churn repair sweep keeps producing its report through the
/// `repro` dispatch: every swept policy appears, and the headline eager-vs-lazy
/// comparison lines are rendered.  This is the same code path
/// `repro repair-sweep --scale small` (run in CI as part of `repro all`) takes.
#[test]
fn repro_repair_sweep_at_small_scale() {
    let report = run_experiment("repair-sweep", Scale::Small, 42)
        .expect("repair-sweep is a known experiment");
    assert!(report.contains("Repair sweep"), "report:\n{report}");
    for needle in ["eager", "lazy(k=0)", "lazy(k=2)", "vs eager @ timeout"] {
        assert!(report.contains(needle), "missing '{needle}':\n{report}");
    }
    assert!(
        report.contains("Repair/useful"),
        "maintenance-bill column missing:\n{report}"
    );
}

/// The grouped-churn placement sweep keeps producing its report through the
/// `repro` dispatch — the same code path `repro placement-sweep --scale small`
/// (run in CI as part of `repro all`) takes — and keeps demonstrating its
/// headline: domain-aware placement beats oblivious placement on files lost
/// under correlated whole-domain outages at equal repair bandwidth.
#[test]
fn repro_placement_sweep_at_small_scale() {
    use peerstripe::experiments::placement_sweep::{run_placement_sweep, PlacementSweepConfig};
    use peerstripe::experiments::report::render_placement_sweep;

    let sweep = run_placement_sweep(&PlacementSweepConfig::at_scale(Scale::Small, 42));
    assert!(
        sweep.domain_spread_beats_oblivious(),
        "domain-spread must beat overlay-random on durability: {:#?}",
        sweep.rows
    );
    // The detector axis: outage-aware detection must at least halve the
    // repair bill versus the per-node baseline — on the synthetic grouped
    // topology *and* the trace-derived from_sessions one — without losing
    // any additional files.  This is the ROADMAP outage-aware item's
    // acceptance bar.
    assert!(
        sweep.outage_aware_beats_per_node(),
        "outage-aware detection must halve repair bytes at equal durability: {:#?}",
        sweep.detector_rows
    );
    let report = render_placement_sweep(&sweep);
    for needle in [
        "Placement sweep",
        "overlay-random",
        "domain-spread",
        "capacity-weighted",
        "domain-spread vs overlay-random @ group",
        "total over matched configurations",
        "Cap viol.",
        "Detector sweep",
        "per-node",
        "outage-aware(θ=0.50)",
        "sessions(",
        "vs per-node @",
        "Wasted%",
    ] {
        assert!(report.contains(needle), "missing '{needle}':\n{report}");
    }
    // The dispatcher path agrees with the direct call.
    let dispatched = run_experiment("placement-sweep", Scale::Small, 42)
        .expect("placement-sweep is a known experiment");
    assert!(dispatched.contains("Placement sweep"));
}

/// The per-node detection path is byte-identical to the pre-refactor engine:
/// the golden file was captured from `repro placement-sweep --scale small
/// --seed 42` *before* detection became pluggable, and the placement-strategy
/// table (which runs entirely under per-node detection) must still render
/// byte for byte.  The refactor adds the detector axis strictly below it.
#[test]
fn placement_sweep_per_node_output_matches_pre_refactor_golden() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/placement_sweep_small_seed42.txt"
    ))
    .expect("golden capture present");
    // Strip the repro binary's header (first two lines); the remainder is the
    // rendered placement-sweep section exactly as the seed-42 small run
    // produced it pre-refactor.
    let body: String = golden.lines().skip(2).map(|l| format!("{l}\n")).collect();
    assert!(!body.is_empty(), "golden file must carry the table");
    let report = run_experiment("placement-sweep", Scale::Small, 42)
        .expect("placement-sweep is a known experiment");
    assert!(
        report.starts_with(&body),
        "per-node placement-sweep output diverged from the pre-refactor \
         golden capture.\n--- golden ---\n{body}\n--- current ---\n{report}"
    );
}

/// Smoke for `examples/outage_aware_detection.rs`: the per-node vs
/// outage-aware comparison the example walks through must keep demonstrating
/// the saving — same logic, smaller cluster.
#[test]
fn outage_aware_detection_example_logic() {
    use peerstripe::placement::Topology;
    use peerstripe::repair::{
        BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, GroupedChurn,
        MaintenanceEngine, OutageAwareConfig, RepairConfig, RepairPolicy, SessionModel,
    };
    use peerstripe::sim::SimTime;

    let run = |detection: DetectionKind| {
        let mut rng = DetRng::new(2026);
        let cluster = ClusterConfig {
            nodes: 60,
            capacity: CapacityModel::Fixed(ByteSize::gb(4)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut storage = PeerStripe::new(
            cluster,
            PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
        );
        for i in 0..30 {
            assert!(storage
                .store_file(&FileRecord::new(format!("archive-{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        let manifests = storage.manifests().clone();
        let topology = Topology::uniform_groups(60, 10);
        let churn = ChurnProcess {
            sessions: SessionModel::Synthetic {
                mean_session_secs: 24.0 * 3_600.0,
                mean_downtime_secs: 2.0 * 3_600.0,
            },
            permanent_fraction: 0.0,
            grouped: Some(GroupedChurn::new(topology, 24.0, 12.0)),
        };
        let config = RepairConfig {
            policy: RepairPolicy::Eager,
            detector: DetectorConfig::default_desktop_grid().with_timeout(4.0 * 3_600.0),
            detection,
            bandwidth: BandwidthBudget::symmetric(ByteSize::mb(4)),
            sample_period_secs: 3_600.0,
        };
        let mut engine =
            MaintenanceEngine::new(storage.into_cluster(), &manifests, churn, config, 2026);
        engine.run_for(SimTime::from_secs(72 * 3_600));
        engine.report()
    };
    let per_node = run(DetectionKind::PerNodeTimeout);
    let aware = run(DetectionKind::OutageAware(
        OutageAwareConfig::default_desktop_grid(),
    ));
    assert!(per_node.false_declarations > 0, "{per_node:?}");
    assert!(aware.declarations_held > 0, "{aware:?}");
    assert!(
        aware.repair_bytes.as_u64() * 2 <= per_node.repair_bytes.as_u64(),
        "outage awareness must halve the repair bill: {} vs {}",
        aware.repair_bytes,
        per_node.repair_bytes
    );
    assert!(aware.files_lost <= per_node.files_lost);
}

/// Smoke test mirroring `examples/network_ring.rs`: store a file through the
/// TCP gateway against eight live node servers, take one away, and verify
/// the degraded read and the repair path — the same client/placement/erasure
/// stack as the simulator, over real sockets.
///
/// Uses the real `peerstripe-node` daemon processes when the binary is built
/// (CI builds it first); otherwise serves the same wire protocol from
/// in-process TCP servers so the networked logic cannot silently rot.
#[test]
fn network_ring_store_kill_recover() {
    use peerstripe::net::{
        node_binary, GatewayConfig, LocalRing, NodeConfig, NodeEndpoint, NodeServer, NodeService,
        RingGateway, ServerConfig,
    };
    use peerstripe::overlay::Id;

    const NODES: usize = 8;
    let capacity = ByteSize::mb(64);

    // Either a ring of real daemon processes or a set of in-process servers;
    // both serve the same framed protocol on localhost TCP.
    let mut process_ring: Option<LocalRing> = None;
    let mut in_process = Vec::new();
    let endpoints: Vec<NodeEndpoint> = match node_binary() {
        Some(bin) => {
            let ring = LocalRing::spawn(&bin, NODES, capacity).expect("spawn daemons");
            let endpoints = ring.endpoints();
            process_ring = Some(ring);
            endpoints
        }
        None => (0..NODES)
            .map(|i| {
                let name = format!("node-{i}");
                let service = NodeService::new(&NodeConfig::named(&name, capacity));
                let server = NodeServer::bind("127.0.0.1:0", service, ServerConfig::default())
                    .expect("bind")
                    .spawn();
                let endpoint = NodeEndpoint {
                    node: i,
                    id: Id::hash(&name),
                    addr: server.local_addr(),
                };
                in_process.push(server);
                endpoint
            })
            .collect(),
    };

    let gateway = RingGateway::connect(&endpoints, GatewayConfig::default());
    let mut storage = PeerStripe::new(
        gateway,
        PeerStripeConfig {
            coding: CodingPolicy::ReedSolomon { data: 5, parity: 3 },
            ..PeerStripeConfig::default()
        },
    );

    let mut rng = DetRng::new(42);
    let data: Vec<u8> = (0..128 * 1024).map(|_| rng.next_u64() as u8).collect();
    assert!(storage.store_data("telemetry.parquet", &data).is_stored());
    assert_eq!(
        storage.retrieve_data("telemetry.parquet").as_deref(),
        Some(&data[..])
    );

    // Take away a node that holds blocks: SIGKILL for the daemon ring,
    // server stop for the in-process one — either way its port goes dead.
    let victim = {
        let manifest = storage.manifest("telemetry.parquet").expect("manifest");
        (0..NODES)
            .find(|&n| {
                manifest
                    .chunks
                    .iter()
                    .any(|c| c.blocks_on(n).next().is_some())
            })
            .expect("some node holds a block")
    };
    match &mut process_ring {
        Some(ring) => ring.kill(victim).expect("kill daemon"),
        None => {
            // Servers were pushed in node order; stop() severs open
            // connections and closes the listener.
            in_process.remove(victim).stop().expect("stop server");
        }
    }

    // Degraded read, then declared failure + repair, then a whole read.
    assert_eq!(
        storage.retrieve_data("telemetry.parquet").as_deref(),
        Some(&data[..]),
        "degraded read with node {victim} gone"
    );
    let takeover = storage
        .backend_mut()
        .mark_failed(victim)
        .expect("victim was a member");
    let report = storage.handle_node_failure(victim, &takeover);
    assert_eq!(report.chunks_lost, 0);
    assert!(report.blocks_regenerated > 0);
    assert_eq!(
        storage.retrieve_data("telemetry.parquet").as_deref(),
        Some(&data[..])
    );
    assert!(storage.is_file_available("telemetry.parquet"));

    // Every RPC was counted.
    let export = storage.backend().export_metrics();
    let total: u64 = export
        .counters
        .iter()
        .filter(|c| c.name == "gateway_rpc_total")
        .map(|c| c.value)
        .sum();
    assert!(total > 0, "gateway telemetry must count RPCs");
}
