//! Seed-stability regression tests: the same experiment at the same seed must
//! render byte-identical reports within one process.
//!
//! This is the dynamic counterpart of `repro lint`'s static determinism rules:
//! the linter forbids the *sources* of nondeterminism (RandomState iteration,
//! wall clocks, ambient RNGs), and this test catches whatever slips past it —
//! an unordered sort key, address-dependent hashing, a stray global.  The two
//! sweeps exercised here traverse every layer the linter marks sim-facing:
//! churn, detection, repair, placement, overlay and reporting.

use peerstripe_experiments::cli::run_experiment;
use peerstripe_experiments::Scale;

/// Run one experiment twice and insist on byte-identical output.
fn assert_seed_stable(experiment: &str) {
    let first = run_experiment(experiment, Scale::Small, 42)
        .unwrap_or_else(|| panic!("experiment '{experiment}' unknown"));
    let second = run_experiment(experiment, Scale::Small, 42)
        .unwrap_or_else(|| panic!("experiment '{experiment}' unknown"));
    assert!(
        !first.is_empty(),
        "experiment '{experiment}' produced no output"
    );
    if first != second {
        // Pinpoint the first divergent line; dumping both reports whole
        // would drown the signal.
        for (no, (a, b)) in first.lines().zip(second.lines()).enumerate() {
            assert_eq!(
                a,
                b,
                "'{experiment}' diverged between runs at line {}",
                no + 1
            );
        }
        panic!(
            "'{experiment}' runs differ in length: {} vs {} bytes",
            first.len(),
            second.len()
        );
    }
}

#[test]
fn placement_sweep_is_seed_stable() {
    assert_seed_stable("placement-sweep");
}

#[test]
fn repair_sweep_is_seed_stable() {
    assert_seed_stable("repair-sweep");
}

#[test]
fn different_seeds_actually_differ() {
    // Guard the guard: if the sweep ignored its seed, the two tests above
    // would pass vacuously.
    let a = run_experiment("placement-sweep", Scale::Small, 42).expect("known experiment");
    let b = run_experiment("placement-sweep", Scale::Small, 43).expect("known experiment");
    assert_ne!(a, b, "changing the seed must change the report");
}
