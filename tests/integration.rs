//! Cross-crate integration tests: full store → churn → recover → retrieve cycles
//! and the paper's headline qualitative claims at small scale.

use peerstripe::baselines::{Cfs, CfsConfig, Past, PastConfig};
use peerstripe::core::churn::AvailabilityTracker;
use peerstripe::core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::multicast::{BulletConfig, BulletSim, MulticastTree};
use peerstripe::sim::{ByteSize, DetRng};
use peerstripe::trace::{CapacityModel, FileRecord, TraceConfig};

fn cluster(nodes: usize, capacity: ByteSize, seed: u64) -> peerstripe::core::StorageCluster {
    let mut rng = DetRng::new(seed);
    ClusterConfig {
        nodes,
        capacity: CapacityModel::Fixed(capacity),
        report_fraction: 1.0,
        track_objects: true,
    }
    .build(&mut rng)
}

#[test]
fn peerstripe_stores_what_past_cannot() {
    // The headline capability: a file larger than any contributor.
    let file = FileRecord::new("telescope-run.raw", ByteSize::gb(5));

    let mut past = Past::new(cluster(40, ByteSize::gb(1), 1), PastConfig::default());
    assert!(
        !past.store_file(&file).is_stored(),
        "PAST cannot store a 5 GB file on 1 GB nodes"
    );

    let mut ours = PeerStripe::new(cluster(40, ByteSize::gb(1), 1), PeerStripeConfig::default());
    assert!(
        ours.store_file(&file).is_stored(),
        "PeerStripe stripes it over many nodes"
    );
    assert!(ours.is_file_available("telescope-run.raw"));

    let mut cfs = Cfs::new(
        cluster(40, ByteSize::gb(1), 1),
        CfsConfig::paper_simulation(),
    );
    assert!(
        cfs.store_file(&file).is_stored(),
        "CFS can also store it, with many more chunks"
    );
    let cfs_chunks = cfs.metrics().mean_chunks_per_file();
    let our_chunks = ours.metrics().mean_chunks_per_file();
    assert!(
        cfs_chunks > 10.0 * our_chunks,
        "CFS needs far more chunks ({cfs_chunks}) than PeerStripe ({our_chunks})"
    );
}

#[test]
fn full_lifecycle_store_fail_recover_retrieve() {
    // Byte-level lifecycle across overlay + erasure + storage + recovery.
    let mut ps = PeerStripe::new(
        cluster(50, ByteSize::mb(300), 2),
        PeerStripeConfig::default().with_coding(CodingPolicy::xor_2_3()),
    );
    let mut rng = DetRng::new(3);
    let data: Vec<u8> = (0..1_500_000).map(|_| rng.next_u32() as u8).collect();
    assert!(ps.store_data("genome.fasta", &data).is_stored());

    // Fail three nodes holding blocks, recovering after each failure.
    for _ in 0..3 {
        let victim = ps
            .manifest("genome.fasta")
            .unwrap()
            .all_blocks()
            .map(|b| b.node)
            .next()
            .unwrap();
        let takeover = ps.cluster_mut().fail_node(victim).unwrap();
        let report = ps.handle_node_failure(victim, &takeover);
        assert_eq!(
            report.chunks_lost, 0,
            "coding + recovery must not lose chunks"
        );
        assert!(ps.is_file_available("genome.fasta"));
    }
    assert_eq!(ps.retrieve_data("genome.fasta").unwrap(), data);
}

#[test]
fn availability_ordering_matches_figure_10() {
    let nodes = 300;
    let files = nodes * 10;
    let mut unavailable = Vec::new();
    for coding in [
        CodingPolicy::None,
        CodingPolicy::xor_2_3(),
        CodingPolicy::online_default(),
    ] {
        let mut rng = DetRng::new(5);
        let c = ClusterConfig::scaled(nodes).build(&mut rng);
        let mut ps = PeerStripe::new(c, PeerStripeConfig::default().with_coding(coding));
        let trace = TraceConfig::scaled(files).generate(6);
        for f in &trace.files {
            let _ = ps.store_file(f);
        }
        let mut tracker = AvailabilityTracker::build(ps.manifests());
        let sizes = AvailabilityTracker::file_sizes(ps.manifests());
        let mut fail_rng = DetRng::new(7);
        for (node, _) in ps.cluster_mut().fail_random(nodes / 10, &mut fail_rng) {
            tracker.fail_node(node, &sizes);
        }
        unavailable.push(tracker.unavailable_pct());
    }
    assert!(
        unavailable[0] > unavailable[1],
        "no coding loses more than XOR: {unavailable:?}"
    );
    assert!(
        unavailable[1] >= unavailable[2],
        "XOR loses at least as much as online: {unavailable:?}"
    );
}

#[test]
fn multicast_tree_from_overlay_disseminates_replicas() {
    // Build a locality-aware tree over a real overlay and push a chunk through it.
    let mut rng = DetRng::new(8);
    let cluster = ClusterConfig::scaled(200).build(&mut rng);
    let overlay = cluster.overlay();
    let source = overlay.random_alive(&mut rng).unwrap();
    let replicas: Vec<_> = overlay
        .ring()
        .k_closest(peerstripe::overlay::Id::hash("block_0_1"), 32)
        .into_iter()
        .map(|(_, n)| n)
        .collect();
    let tree = MulticastTree::locality_aware(overlay, source, &replicas, 2);
    assert!(tree.len() >= 32);
    let run = BulletSim::new(
        tree,
        BulletConfig {
            packets: 200,
            ransub_fraction: 0.16,
            per_epoch_budget: 4,
            upload_budget: 6,
            max_epochs: 5_000,
        },
    )
    .run(&mut rng);
    assert!(
        run.completed_at.is_some(),
        "all replicas receive the whole chunk"
    );
}

#[test]
fn metadata_and_byte_paths_agree_on_placement_shape() {
    let mut ps = PeerStripe::new(
        cluster(30, ByteSize::mb(64), 9),
        PeerStripeConfig::default(),
    );
    let mut rng = DetRng::new(10);
    let data: Vec<u8> = (0..4_000_000).map(|_| rng.next_u32() as u8).collect();
    assert!(ps.store_data("bytes.bin", &data).is_stored());
    assert!(ps
        .store_file(&FileRecord::new("meta.bin", ByteSize::bytes(4_000_000)))
        .is_stored());
    let bytes_chunks = ps.manifest("bytes.bin").unwrap().chunks.len();
    let meta_chunks = ps.manifest("meta.bin").unwrap().chunks.len();
    // Both paths size chunks from the same getCapacity probes, so the chunk
    // counts must be in the same ballpark (they probe different key sequences,
    // so exact equality is not expected).
    assert!(
        bytes_chunks.abs_diff(meta_chunks) <= 2,
        "{bytes_chunks} vs {meta_chunks}"
    );
}

#[test]
fn cat_reconstruction_survives_total_cat_loss() {
    let mut ps = PeerStripe::new(
        cluster(40, ByteSize::mb(400), 11),
        PeerStripeConfig::default(),
    );
    assert!(ps
        .store_file(&FileRecord::new("reconstruct-me", ByteSize::gb(2)))
        .is_stored());
    let original: Vec<ByteSize> = ps
        .manifest("reconstruct-me")
        .unwrap()
        .chunks
        .iter()
        .map(|c| c.size)
        .filter(|s| !s.is_zero())
        .collect();
    let rebuilt = ps.reconstruct_cat("reconstruct-me");
    let rebuilt_sizes: Vec<ByteSize> = rebuilt
        .extents()
        .iter()
        .map(|e| e.size())
        .filter(|s| !s.is_zero())
        .collect();
    assert_eq!(rebuilt_sizes, original);
    assert_eq!(rebuilt.file_size(), ByteSize::gb(2));
}
