//! Telemetry acceptance tests: the trace layer must be deterministic, inert
//! (attaching a tracer cannot perturb the simulation), and causally complete
//! (every lost file traces to a concrete declaration and outage).
//!
//! The golden fixture under `tests/golden/` pins the exact JSONL byte stream
//! of the `repair-mini` scenario at seed 42 — any change to event ordering,
//! record encoding, or the manifest header shows up as a diff here before it
//! silently invalidates archived traces.

use peerstripe::core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::experiments::trace_cmd::{self, TraceCmdConfig};
use peerstripe::experiments::Scale;
use peerstripe::repair::{
    BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, MaintenanceEngine, RepairConfig,
    RepairPolicy, SessionModel,
};
use peerstripe::sim::{ByteSize, DetRng, SimTime};
use peerstripe::telemetry::{JsonlTracer, NullTracer, Tracer};
use peerstripe::trace::TraceConfig;

fn trace_config(scenario: &str, seed: u64) -> TraceCmdConfig {
    TraceCmdConfig {
        scenario: scenario.to_string(),
        scale: Scale::Small,
        seed,
        profile: false,
    }
}

/// The committed golden trace: `repro trace --scenario repair-mini --seed 42`
/// must reproduce it byte for byte. Regenerate deliberately (and review the
/// diff) with:
/// `repro trace --scenario repair-mini --seed 42 --out /tmp/t` then copy
/// `trace_repair-mini_*_seed42.jsonl` over the fixture.
#[test]
fn repair_mini_seed42_matches_the_golden_trace() {
    let golden = include_str!("golden/trace_repair_mini_seed42.jsonl");
    let artifacts = trace_cmd::run_trace(&trace_config("repair-mini", 42)).expect("known scenario");
    if artifacts.jsonl != golden {
        for (no, (got, want)) in artifacts.jsonl.lines().zip(golden.lines()).enumerate() {
            assert_eq!(got, want, "trace diverged from golden at line {}", no + 1);
        }
        panic!(
            "trace differs from golden in length: {} vs {} bytes",
            artifacts.jsonl.len(),
            golden.len()
        );
    }
}

/// Double-run gate for every named scenario: same seed → byte-identical
/// trace, summary, and metrics export; different seed → different trace.
#[test]
fn trace_scenarios_are_seed_stable() {
    for scenario in trace_cmd::SCENARIOS {
        let first = trace_cmd::run_trace(&trace_config(scenario, 42)).expect("known scenario");
        let second = trace_cmd::run_trace(&trace_config(scenario, 42)).expect("known scenario");
        assert_eq!(
            first.jsonl, second.jsonl,
            "'{scenario}' trace differs between identical runs"
        );
        assert_eq!(
            first.metrics_json, second.metrics_json,
            "'{scenario}' metrics export differs between identical runs"
        );
        let other = trace_cmd::run_trace(&trace_config(scenario, 43)).expect("known scenario");
        assert_ne!(
            first.jsonl, other.jsonl,
            "'{scenario}' trace ignores its seed"
        );
    }
}

/// A small but busy maintenance engine, identical across calls.
fn engine_with(tracer: Box<dyn Tracer>) -> MaintenanceEngine {
    let mut rng = DetRng::new(7);
    let cluster = ClusterConfig::scaled(30).build(&mut rng);
    let mut ps = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
    );
    for file in &TraceConfig::scaled(50).generate(7 ^ 0xc0de).files {
        let _ = ps.store_file(file);
    }
    let manifests = ps.manifests().clone();
    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: 6.0 * 3_600.0,
            mean_downtime_secs: 3.0 * 3_600.0,
        },
        permanent_fraction: 0.05,
        grouped: None,
    };
    let config = RepairConfig {
        policy: RepairPolicy::Eager,
        detector: DetectorConfig::default_desktop_grid().with_timeout(6.0 * 3_600.0),
        detection: DetectionKind::PerNodeTimeout,
        bandwidth: BandwidthBudget::symmetric(ByteSize::mb(4)),
        sample_period_secs: 3_600.0,
    };
    let mut engine =
        MaintenanceEngine::new(ps.into_cluster(), &manifests, churn, config, 7).with_tracer(tracer);
    engine.run_for(SimTime::from_secs(12 * 3_600));
    engine
}

/// Attaching a tracer must be pure observation: the engine's results are
/// identical whether it runs under the free `NullTracer` or the recording
/// `JsonlTracer`.
#[test]
fn tracer_choice_does_not_perturb_the_engine() {
    let null_run = engine_with(Box::new(NullTracer));
    let mut jsonl_run = engine_with(Box::new(JsonlTracer::new()));
    let null_report = null_run.report();
    let jsonl_report = jsonl_run.report();
    assert_eq!(null_report.events, jsonl_report.events);
    assert_eq!(null_report.files_lost, jsonl_report.files_lost);
    assert_eq!(null_report.repair_bytes, jsonl_report.repair_bytes);
    assert_eq!(
        null_report.blocks_regenerated,
        jsonl_report.blocks_regenerated
    );
    assert_eq!(
        null_run.metrics_registry().render_json(),
        jsonl_run.metrics_registry().render_json(),
        "metrics registry must not depend on the tracer"
    );
    // And the recording tracer did actually record.
    match jsonl_run.finish_trace() {
        peerstripe::telemetry::TraceOutput::Jsonl(jsonl) => {
            assert!(!jsonl.is_empty(), "JsonlTracer captured nothing")
        }
        other => panic!("expected a JSONL trace, got {other:?}"),
    }
}

/// The registry port of `MaintenanceMetrics` is an accounting identity, not
/// an approximation: every exported counter equals the report field it
/// mirrors, which the engine's `WriteOffAccounting` keeps balanced.
#[test]
fn registry_counters_balance_with_the_report() {
    let engine = engine_with(Box::new(NullTracer));
    let report = engine.report();
    let registry = engine.metrics_registry();
    let counter = |name: &str| {
        registry
            .find_counter(name, &[])
            .unwrap_or_else(|| panic!("counter '{name}' missing from the registry"))
    };
    assert_eq!(counter("maintenance_files_lost_total"), report.files_lost);
    assert_eq!(
        counter("maintenance_repair_bytes_total"),
        report.repair_bytes.as_u64()
    );
    assert_eq!(
        counter("maintenance_blocks_regenerated_total"),
        report.blocks_regenerated
    );
    assert_eq!(
        counter("maintenance_wasted_repair_bytes_total"),
        report.wasted_repair_bytes.as_u64()
    );
    assert!(report.files_lost > 0, "scenario too quiet to exercise loss");
}

/// Acceptance: in the grouped-churn placement scenario every lost file is
/// attributed to a concrete outage and declaration — directly when the
/// finishing declaration belonged to the outage, by block-vote otherwise.
#[test]
fn placement_outage_losses_are_fully_attributed() {
    let artifacts =
        trace_cmd::run_trace(&trace_config("placement-outage", 42)).expect("known scenario");
    let summary = trace_cmd::summarize(&artifacts.jsonl).expect("trace parses");
    assert!(
        !summary.files_lost.is_empty(),
        "scenario lost no files; attribution is untested"
    );
    assert_eq!(
        summary.unattributed, 0,
        "every loss must trace to a group outage"
    );
    for loss in &summary.files_lost {
        assert!(
            loss.outage.is_some(),
            "file {} has no causing outage",
            loss.file
        );
        assert!(
            loss.declared_at_ns > 0,
            "file {} lacks a causing declaration time",
            loss.file
        );
    }
}
