//! Offline stand-in for the real `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` / `iter_batched`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros — backed
//! by a deliberately small timing loop: a short warm-up, then a fixed number
//! of timed iterations, reporting the mean and minimum per-iteration time.
//! There is no statistical analysis, plotting, or HTML report; the point is
//! that `cargo bench` compiles and produces comparable wall-clock numbers
//! without network access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// the stub times each routine invocation individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_iters: 5,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Run a single named benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.to_string(), self.measurement_iters, &mut f);
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub uses a fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub's warm-up is a single call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub uses a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one named benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.to_string(), self.criterion.measurement_iters, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench(name: &str, iters: u32, f: &mut impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        total: Duration::ZERO,
        min: Duration::MAX,
        timed: 0,
    };
    f(&mut bencher);
    if bencher.timed > 0 {
        let mean = bencher.total / bencher.timed;
        println!(
            "  {name:<50} mean {mean:>12.3?}   min {:>12.3?}",
            bencher.min
        );
    } else {
        println!("  {name:<50} (no measurement)");
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u32,
    total: Duration,
    min: Duration,
    timed: u32,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.record(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed());
        }
    }

    fn record(&mut self, elapsed: Duration) {
        self.total += elapsed;
        self.min = self.min.min(elapsed);
        self.timed += 1;
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name (both the plain and the `config = ...` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("iter_batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert!(runs > 0);
    }
}
