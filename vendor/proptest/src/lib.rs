//! Offline stand-in for the real `proptest` crate.
//!
//! The build environment has no network access, so this vendor crate provides
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! * [`Strategy`] implementations for integer/float ranges, [`any`] over the
//!   primitive types, [`collection::vec`] / [`collection::hash_set`], and
//!   string generation from a small regex subset (`[class]` atoms with
//!   `{n,m}` / `?` / `*` / `+` quantifiers),
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest: inputs are sampled from a deterministic
//! per-test RNG (seeded from the test's name), there is **no shrinking**, and
//! `prop_assert*` failures panic immediately like `assert*`. That trades
//! minimal counterexamples for zero dependencies, which is the right trade
//! for an offline build.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 RNG used to sample test inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the test's name, so every test gets its own
    /// reproducible input stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed session seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    fn below_u128(&mut self, n: u128) -> u128 {
        // Modulo bias is irrelevant at test-sampling fidelity.
        self.next_u128() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! signed_small_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

signed_small_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for Range<i128> {
    type Value = i128;
    fn sample(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below_u128(span) as i128)
    }
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.f64_unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Generate a `String` matching a small regex subset: concatenated atoms
/// (literal characters or `[...]` classes), each optionally followed by
/// `{n}` / `{n,m}` / `?` / `*` / `+`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a full-domain uniform generator.
pub trait Arbitrary {
    /// Draw a uniform value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: arbitrary bit patterns (NaN, infinities) make
        // poor default test inputs.
        (rng.f64_unit() - 0.5) * 2.0e12
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for a primitive type, mirroring `proptest::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (`vec`, `hash_set`).

    use super::*;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate a `HashSet` whose target size is drawn from `size`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Duplicate draws don't grow the set; cap the attempts so a
            // narrow element domain cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 50 + 200 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string generation
// ---------------------------------------------------------------------------

struct RegexAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_regex(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = atom.max - atom.min + 1;
        let count = atom.min + rng.below_u128(span as u128) as usize;
        for _ in 0..count {
            let idx = rng.below_u128(atom.choices.len() as u128) as usize;
            out.push(atom.choices[idx]);
        }
    }
    out
}

fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms: Vec<RegexAtom> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => {
                            panic!("proptest (vendored): unterminated `[` in regex `{pattern}`")
                        }
                        Some(']') => break,
                        Some('^') if prev.is_none() && class.is_empty() => {
                            panic!(
                                "proptest (vendored): negated classes unsupported in `{pattern}`"
                            )
                        }
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.unwrap();
                            let hi = chars.next().unwrap();
                            for code in (lo as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    class.push(ch);
                                }
                            }
                            prev = None;
                        }
                        Some('\\') => {
                            let esc = chars.next().unwrap_or('\\');
                            class.push(esc);
                            prev = Some(esc);
                        }
                        Some(ch) => {
                            class.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                class
            }
            '\\' => vec![chars.next().unwrap_or('\\')],
            '.' => ('a'..='z').chain('A'..='Z').chain('0'..='9').collect(),
            '(' | ')' | '|' => {
                panic!("proptest (vendored): regex feature `{c}` unsupported in `{pattern}`")
            }
            other => vec![other],
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad `{n,m}` quantifier"),
                        hi.trim().parse().expect("bad `{n,m}` quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad `{n}` quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(
            !choices.is_empty(),
            "empty character class in regex `{pattern}`"
        );
        atoms.push(RegexAtom { choices, min, max });
    }
    atoms
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` that samples its arguments and runs the body `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_internal!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __pt_case in 0..__pt_config.cases {
                let _ = __pt_case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __pt_rng);)+
                $body
            }
        }
        $crate::__proptest_internal!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

/// Assert a property holds; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert two expressions are equal; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert two expressions are not equal; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let s = (2usize..5).sample(&mut rng);
            assert!((2..5).contains(&s));
            let i = (-10i64..-2).sample(&mut rng);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..500 {
            let s = "[a-zA-Z][a-zA-Z0-9.-]{0,24}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 25);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-'));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::from_name("collections");
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 1..7).sample(&mut rng);
            assert!((1..7).contains(&v.len()));
            let s = collection::hash_set(any::<u128>(), 1..64).sample(&mut rng);
            assert!((1..64).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: addition is commutative.
        #[test]
        fn macro_smoke(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }
    }
}
