//! Offline stand-in for the real `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! small serialization surface it actually uses instead of depending on
//! crates.io. The data model is a JSON-shaped [`value::Value`] tree: a type is
//! [`Serialize`] if it can render itself into a `Value`, and [`Deserialize`]
//! if it can reconstruct itself from one. The companion `serde_json` vendor
//! crate turns `Value` trees into JSON text and back.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the vendored `serde_derive`
//! proc-macro, re-exported here exactly like the real crate does, so user code
//! (`use serde::{Deserialize, Serialize};`) is source-compatible.
//!
//! Numbers are kept as their literal text ([`value::Value::Num`]) rather than
//! as `f64`, so `u64::MAX` and `u128` identifiers round-trip without losing
//! precision.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The JSON-shaped data model shared by `Serialize` and `Deserialize`.

    /// A JSON-shaped value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON `true` / `false`.
        Bool(bool),
        /// A number, kept as its literal text for lossless round-trips.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object; insertion order is preserved.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a `Str`.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The fields, if this is an `Obj`.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        /// The elements, if this is an `Arr`.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The literal number text, if this is a `Num`.
        pub fn as_num(&self) -> Option<&str> {
            match self {
                Value::Num(n) => Some(n),
                _ => None,
            }
        }
    }
}

pub mod de {
    //! Deserialization error type.

    /// Why a `Value` could not be turned back into the requested type.
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Build an error from any displayable message.
        pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    impl std::error::Error for Error {}
}

use value::Value;

/// A type that can render itself into the [`value::Value`] data model.
pub trait Serialize {
    /// Render `self` as a `Value` tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`value::Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a `Value` tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

/// Look up and deserialize a named struct field (used by the derive macro).
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, de::Error> {
    let (_, v) = fields
        .iter()
        .find(|(k, _)| k == name)
        .ok_or_else(|| de::Error::custom(format!("missing field `{name}` for {ty}")))?;
    T::from_value(v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                v.as_num()
                    .ok_or_else(|| de::Error::custom(concat!("expected number for ", stringify!($t))))?
                    .parse()
                    .map_err(de::Error::custom)
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    // `{:?}` prints the shortest representation that round-trips.
                    Value::Num(format!("{:?}", self))
                } else {
                    // JSON has no NaN/Infinity tokens; emit `null` like the
                    // real serde_json does.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                if matches!(v, Value::Null) {
                    // Round-trip partner of the non-finite `null` above
                    // (unlike real serde_json, which rejects null here).
                    return Ok(<$t>::NAN);
                }
                v.as_num()
                    .ok_or_else(|| de::Error::custom(concat!("expected number for ", stringify!($t))))?
                    .parse()
                    .map_err(de::Error::custom)
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::custom("expected string for char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom(
                "expected single-character string for char",
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// A `Value` serializes and deserializes as itself, so callers can render or
// parse raw `Value` trees through `serde_json` — the escape hatch protocol
// code uses to splice extra fields into an otherwise typed JSON object.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_arr()
            .ok_or_else(|| de::Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_arr()
            .ok_or_else(|| de::Error::custom("expected array for pair"))?;
        if arr.len() != 2 {
            return Err(de::Error::custom("expected two-element array for pair"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_obj()
            .ok_or_else(|| de::Error::custom("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_obj()
            .ok_or_else(|| de::Error::custom("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
