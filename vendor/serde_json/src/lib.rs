//! Offline stand-in for the real `serde_json` crate.
//!
//! Renders the vendored `serde` crate's [`Value`](serde::value::Value) data
//! model to JSON text and parses it back. Only the two entry points the
//! workspace uses are provided: [`to_string`] and [`from_str`].

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::new("invalid number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        Ok(Value::Num(text.to_string()))
    }

    /// Read four hex digits starting at byte offset `at`.
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.read_hex4(self.pos + 1)?;
                            if (0xD800..=0xDBFF).contains(&hi) {
                                // UTF-16 high surrogate: JSON encodes non-BMP
                                // characters as a \uXXXX\uYYYY pair.
                                if self.bytes.get(self.pos + 5) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 6) != Some(&b'u')
                                {
                                    return Err(Error::new(
                                        "unpaired UTF-16 surrogate in \\u escape",
                                    ));
                                }
                                let lo = self.read_hex4(self.pos + 7)?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(Error::new(
                                        "invalid UTF-16 low surrogate in \\u escape",
                                    ));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u code point"))?,
                                );
                                self.pos += 10;
                            } else {
                                out.push(
                                    char::from_u32(hi)
                                        .ok_or_else(|| Error::new("invalid \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Obj(vec![
            ("name".to_string(), Value::Str("a \"b\" \\ ✓\n".to_string())),
            ("n".to_string(), Value::Num(u64::MAX.to_string())),
            ("f".to_string(), Value::Num(format!("{:?}", 0.1f64))),
            (
                "arr".to_string(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Bool(false)]),
            ),
            ("empty_obj".to_string(), Value::Obj(vec![])),
            ("empty_arr".to_string(), Value::Arr(vec![])),
        ]);
        let json = {
            let mut s = String::new();
            write_value(&v, &mut s);
            s
        };
        let mut p = Parser {
            bytes: json.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
        assert_eq!(p.pos, json.len());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<u64> = vec![0, 1, u64::MAX];
        let json = to_string(&v).unwrap();
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "😀");
        // Lone or malformed surrogates are invalid JSON.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83dx\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        // Non-BMP characters also round-trip as raw UTF-8.
        let raw = "emoji \u{1f600} and text".to_string();
        let back: String = from_str(&to_string(&raw).unwrap()).unwrap();
        assert_eq!(back, raw);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
        let finite: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(finite, 0.1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
    }
}
