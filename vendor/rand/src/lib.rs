//! Offline stand-in for the real `rand` crate.
//!
//! The workspace's deterministic RNG (`peerstripe_sim::DetRng`) exposes a
//! `rand`-compatible adapter so that external `rand`-based APIs can be driven
//! from it. This vendor crate provides exactly the trait surface that adapter
//! needs: a fallible [`rand_core::TryRng`] and an infallible [`Rng`] that is
//! blanket-implemented for every `TryRng` whose error is
//! [`Infallible`](std::convert::Infallible).

pub mod rand_core {
    //! Core RNG traits (mirrors the `rand_core` layout of the real crate).

    /// A fallible random number generator.
    pub trait TryRng {
        /// Error reported when the generator fails.
        type Error;

        /// Next 32 random bits.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

        /// Next 64 random bits.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

        /// Fill `dest` with random bytes.
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// An infallible random number generator.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T> Rng for T
where
    T: rand_core::TryRng<Error = std::convert::Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => {}
            Err(e) => match e {},
        }
    }
}
