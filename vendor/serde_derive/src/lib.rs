//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal `serde` whose data model is a small JSON-oriented [`Value`] tree.
//! This proc-macro crate derives that crate's `Serialize` / `Deserialize`
//! traits for the type shapes the workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (one-field newtypes serialize as their inner value, which
//!   also covers `#[serde(transparent)]`; wider tuples as arrays),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! There is no `syn`/`quote` here either: the input item is parsed directly
//! from the `proc_macro::TokenStream`, and the generated impl is rendered to a
//! string and re-parsed. Generic types are not supported (the workspace has
//! none); encountering one is a compile-time panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// Derive the vendored `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive the vendored `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

/// The shape of the fields of a struct or of one enum variant.
enum Fields {
    /// `struct S;` / `Variant`
    Unit,
    /// `struct S { a: T, b: U }` — the field names, in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — the arity.
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Tokens = input.into_iter().peekable();
    skip_attributes(&mut toks);
    skip_visibility(&mut toks);

    let keyword = expect_ident(&mut toks);
    let name = expect_ident(&mut toks);
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_struct_fields(&mut toks)),
        "enum" => ItemKind::Enum(parse_enum_body(&mut toks)),
        other => panic!("serde_derive (vendored): cannot derive for `{other} {name}`"),
    };
    Item { name, kind }
}

/// Skip any number of leading `#[...]` attributes.
fn skip_attributes(toks: &mut Tokens) {
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            _ => panic!("serde_derive (vendored): malformed attribute"),
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

fn expect_ident(toks: &mut Tokens) -> String {
    match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive (vendored): expected identifier, found {other:?}"),
    }
}

/// After `struct Name`, the remainder is `{...}`, `(...) ;`, or `;`.
fn parse_struct_fields(toks: &mut Tokens) -> Fields {
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde_derive (vendored): malformed struct body: {other:?}"),
    }
}

/// Extract field names from `a: T, b: U, ...`, tolerating per-field attributes,
/// visibility, and commas nested inside `<...>` generic arguments.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks: Tokens = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut toks);
        skip_visibility(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive (vendored): expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde_derive (vendored): expected `:` after field name, found {other:?}")
            }
        }
        fields.push(name);
        // Consume the type: everything up to the next comma at angle-depth 0.
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        toks.next();
                        break;
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant: top-level commas at
/// angle-depth 0 separate fields.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    if toks.peek().is_none() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tok in toks {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    saw_tokens_since_comma = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    // A trailing comma (`(T,)`) should not count an extra field.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}

/// After `enum Name`, parse `{ Variant, Variant(T), Variant { a: T }, ... }`.
fn parse_enum_body(toks: &mut Tokens) -> Vec<Variant> {
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive (vendored): malformed enum body: {other:?}"),
    };
    let mut variants = Vec::new();
    let mut toks: Tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive (vendored): expected variant name, found {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                toks.next();
                Fields::Tuple(count_tuple_fields(stream))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        for tok in toks.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::value::Value::Null".to_string(),
        ItemKind::Struct(Fields::Named(fields)) => named_to_value(fields, "self.", ""),
        ItemKind::Struct(Fields::Tuple(arity)) => tuple_to_value(*arity, "self."),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::value::Value::Str(\"{vname}\".to_string()),"
                        );
                    }
                    Fields::Named(fields) => {
                        let pat: Vec<String> = fields.iter().map(|f| format!("ref {f}")).collect();
                        let inner = named_to_value(fields, "", "*");
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {} }} => ::serde::value::Value::Obj(vec![(\"{vname}\".to_string(), {inner})]),",
                            pat.join(", ")
                        );
                    }
                    Fields::Tuple(arity) => {
                        let pat: Vec<String> = (0..*arity).map(|i| format!("ref __f{i}")).collect();
                        let inner = tuple_to_value_bound(*arity);
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => ::serde::value::Value::Obj(vec![(\"{vname}\".to_string(), {inner})]),",
                            pat.join(", ")
                        );
                    }
                }
            }
            format!("match *self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::value::Value {{ {body} }} \
         }}"
    )
}

/// `Value::Obj` expression for named fields accessed as `{access}{deref}{field}`.
fn named_to_value(fields: &[String], access: &str, deref: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{deref}{access}{f}))")
        })
        .collect();
    format!("::serde::value::Value::Obj(vec![{}])", entries.join(", "))
}

/// Value expression for tuple fields accessed as `{access}0`, `{access}1`, ...
/// One field (a newtype) serializes as its inner value, like real serde.
fn tuple_to_value(arity: usize, access: &str) -> String {
    if arity == 1 {
        return format!("::serde::Serialize::to_value(&{access}0)");
    }
    let entries: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Serialize::to_value(&{access}{i})"))
        .collect();
    format!("::serde::value::Value::Arr(vec![{}])", entries.join(", "))
}

/// Same as [`tuple_to_value`] but over match-bound `__f{i}` references.
fn tuple_to_value_bound(arity: usize) -> String {
    if arity == 1 {
        return "::serde::Serialize::to_value(__f0)".to_string();
    }
    let entries: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
        .collect();
    format!("::serde::value::Value::Arr(vec![{}])", entries.join(", "))
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Struct(Fields::Named(fields)) => {
            format!(
                "let __fields = __v.as_obj().ok_or_else(|| ::serde::de::Error::custom(\
                     \"expected JSON object for struct {name}\"))?; \
                 Ok({name} {{ {} }})",
                named_from_fields(fields, name)
            )
        }
        ItemKind::Struct(Fields::Tuple(arity)) => tuple_from_value(*arity, name, "__v"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(unit_arms, "\"{vname}\" => return Ok({name}::{vname}),");
                    }
                    Fields::Named(fields) => {
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => {{ \
                                 let __fields = __inner.as_obj().ok_or_else(|| \
                                     ::serde::de::Error::custom(\"expected JSON object for variant {name}::{vname}\"))?; \
                                 return Ok({name}::{vname} {{ {} }}); }}",
                            named_from_fields(fields, &format!("{name}::{vname}"))
                        );
                    }
                    Fields::Tuple(arity) => {
                        let ctor = tuple_from_value(*arity, &format!("{name}::{vname}"), "__inner");
                        let _ = write!(tagged_arms, "\"{vname}\" => {{ return {ctor}; }}");
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{ \
                     match __s {{ {unit_arms} _ => {{}} }} \
                 }} \
                 if let Some(__obj) = __v.as_obj() {{ \
                     if __obj.len() == 1 {{ \
                         let (__tag, __inner) = &__obj[0]; \
                         match __tag.as_str() {{ {tagged_arms} _ => {{}} }} \
                     }} \
                 }} \
                 Err(::serde::de::Error::custom(\"no variant of enum {name} matched\"))"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
             fn from_value(__v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }} \
         }}"
    )
}

/// `field: serde::__field(__fields, \"field\", \"Ty\")?, ...` initializers.
fn named_from_fields(fields: &[String], ty: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__field(__fields, \"{f}\", \"{ty}\")?"))
        .collect();
    inits.join(", ")
}

/// Constructor expression deserializing a tuple struct / variant from `{src}`.
fn tuple_from_value(arity: usize, ctor: &str, src: &str) -> String {
    if arity == 1 {
        return format!("Ok({ctor}(::serde::Deserialize::from_value({src})?))");
    }
    let elems: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
        .collect();
    format!(
        "{{ let __arr = {src}.as_arr().ok_or_else(|| ::serde::de::Error::custom(\
             \"expected JSON array for {ctor}\"))?; \
           if __arr.len() != {arity} {{ \
               return Err(::serde::de::Error::custom(\"wrong tuple arity for {ctor}\")); }} \
           Ok({ctor}({})) }}",
        elems.join(", ")
    )
}
