//! Churn and recovery: distribute an archive over a contributory pool, then fail
//! 10% of the participants and watch availability under the three erasure-coding
//! policies (none, XOR, online) — a miniature of the paper's Figure 10 and
//! Table 3 experiments.
//!
//! Run with: `cargo run --release --example churn_recovery`

use peerstripe::core::churn::{AvailabilityTracker, RegenerationSim};
use peerstripe::core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::sim::{ByteSize, DetRng};
use peerstripe::trace::TraceConfig;

fn deploy(coding: CodingPolicy, nodes: usize, files: usize, seed: u64) -> PeerStripe {
    let mut rng = DetRng::new(seed);
    let cluster = ClusterConfig::scaled(nodes).build(&mut rng);
    let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(coding));
    let trace = TraceConfig::scaled(files).generate(seed ^ 0xabc);
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    ps
}

fn main() {
    let nodes = 400;
    let files = nodes * 25;
    let failures = nodes / 10;
    let seed = 17;

    println!("== Availability without recovery (Figure 10 in miniature) ==");
    println!(
        "{} nodes, {} files, failing {} nodes one by one\n",
        nodes, files, failures
    );
    for coding in [
        CodingPolicy::None,
        CodingPolicy::xor_2_3(),
        CodingPolicy::online_default(),
    ] {
        let mut ps = deploy(coding, nodes, files, seed);
        let mut tracker = AvailabilityTracker::build(ps.manifests());
        let sizes = AvailabilityTracker::file_sizes(ps.manifests());
        let mut rng = DetRng::new(seed ^ 0xfa11);
        for _ in 0..failures {
            if let Some(node) = ps.cluster().overlay().random_alive(&mut rng) {
                ps.cluster_mut().fail_node(node);
                tracker.fail_node(node, &sizes);
            }
        }
        println!(
            "  {:<14} {:>6.2}% of files unavailable ({} of {})",
            coding.label(),
            tracker.unavailable_pct(),
            tracker.files_unavailable(),
            tracker.files_total()
        );
    }

    println!("\n== Regeneration under churn (Table 3 in miniature) ==");
    for fraction in [0.10, 0.20] {
        let mut ps = deploy(CodingPolicy::online_default(), nodes, files, seed);
        let stored = ps.metrics().bytes_stored;
        let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::mb(512), 60.0);
        let mut rng = DetRng::new(seed ^ 0x7ab1e);
        let report = sim.fail_fraction(ps.cluster_mut(), fraction, &mut rng);
        println!(
            "  fail {:>2.0}% of nodes: {} regenerated ({} per failure on average), {} of {} user data lost",
            fraction * 100.0,
            report.data_regenerated,
            ByteSize::bytes(report.per_failure.mean() as u64),
            report.data_lost,
            stored,
        );
    }
}
