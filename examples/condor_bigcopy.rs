//! The Condor `bigCopy` case study (Table 4): run a file-copy job on a 32-machine
//! desktop-grid pool under the three storage back-ends and print the resulting
//! copy times and overheads.
//!
//! Run with: `cargo run --release --example condor_bigcopy`

use peerstripe::experiments::report::render_table4;
use peerstripe::gridsim::{run_bigcopy, table4, BigCopyScheme, PoolConfig};
use peerstripe::sim::ByteSize;

fn main() {
    let pool = PoolConfig::paper();
    println!(
        "Condor pool: {} machines, shared 100 Mb/s Ethernet, contributed storage U(2 GB, 15 GB)\n",
        pool.machines
    );

    // The paper's sweep: 1 GB to 128 GB copies.
    let sizes: Vec<ByteSize> = (0..8).map(|i| ByteSize::gb(1 << i)).collect();
    let rows = table4(&sizes, &pool, 7);
    println!("{}", render_table4(&rows));

    // Detail for one interesting size: 16 GB is the first row where the original
    // whole-file Condor I/O model cannot store the copy at all.
    let r = run_bigcopy(ByteSize::gb(16), BigCopyScheme::VaryingChunks, &pool, 7);
    println!(
        "16 GB copy under varying-size chunks: {} chunks, {} overlay lookups, {:.0} s",
        r.chunks, r.lookups, r.elapsed_secs
    );
    let f = run_bigcopy(ByteSize::gb(16), BigCopyScheme::FixedChunks, &pool, 7);
    println!(
        "16 GB copy under fixed 4 MB chunks:  {} chunks, {} overlay lookups, {:.0} s",
        f.chunks, f.lookups, f.elapsed_secs
    );
}
