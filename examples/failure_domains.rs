//! Failure-domain-aware placement: why spreading blocks over labs matters.
//!
//! Desktop-grid nodes fail in groups — a lab powers down, a switch dies.  This
//! example deploys the same files twice over a 64-node pool organised into
//! eight labs: once through the classic oblivious DHT placement and once
//! through the `domain-spread` strategy, then powers an entire lab down and
//! compares what stays retrievable.
//!
//! Run with `cargo run --example failure_domains`.

use peerstripe::core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::placement::{PlacementStrategy, SpreadReport, StrategyKind, Topology};
use peerstripe::sim::{ByteSize, DetRng};
use peerstripe::trace::{CapacityModel, FileRecord};

fn deploy(strategy: Box<dyn PlacementStrategy>, topology: &Topology) -> PeerStripe {
    let mut rng = DetRng::new(2026);
    let cluster = ClusterConfig {
        nodes: 64,
        capacity: CapacityModel::Fixed(ByteSize::gb(2)),
        report_fraction: 1.0,
        track_objects: true,
    }
    .build(&mut rng);
    let mut ps = PeerStripe::with_placement(
        cluster,
        // 8 blocks per chunk, any 4 recover it: up to 4 losses tolerated, so
        // the domain cap is 4 blocks per lab.
        PeerStripeConfig::default().with_coding(CodingPolicy::Online {
            placed: 8,
            tolerable: 4,
            overhead: 1.03,
        }),
        strategy,
        Some(topology.clone()),
    );
    for i in 0..30 {
        assert!(ps
            .store_file(&FileRecord::new(format!("dataset-{i}"), ByteSize::mb(300)))
            .is_stored());
    }
    ps
}

fn main() {
    // 64 nodes in 4 labs of 16: each lab shares a switch and a breaker.
    let topology = Topology::uniform_groups(64, 16);
    println!(
        "pool: 64 nodes, {} labs of {} (one failure domain each)\n",
        topology.domain_count(),
        topology.members(0).len()
    );

    for kind in [StrategyKind::OverlayRandom, StrategyKind::DomainSpread] {
        let mut ps = deploy(kind.build(2026), &topology);
        let cap = ps.domain_cap();

        // How diverse did the placement come out?
        let mut spread = SpreadReport::new(cap);
        for i in 0..30 {
            let manifest = ps.manifest(&format!("dataset-{i}")).unwrap();
            for chunk in manifest.chunks.iter().filter(|c| !c.size.is_zero()) {
                spread.record_chunk(chunk.blocks.iter().map(|b| b.domain));
            }
        }

        // A whole lab powers down.
        for &node in topology.members(3) {
            ps.cluster_mut().fail_node(node);
        }
        let available = (0..30)
            .filter(|i| ps.is_file_available(&format!("dataset-{i}")))
            .count();

        println!("{}:", kind.label());
        println!(
            "  worst chunk concentration: {} blocks in one lab (cap {})",
            spread.max_in_one_domain, cap
        );
        println!(
            "  chunks a single-lab outage can kill: {}",
            spread.cap_violations
        );
        println!("  files retrievable after lab 3 powers down: {available}/30\n");
    }
}
