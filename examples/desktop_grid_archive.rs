//! Desktop-grid archive: compare PAST, CFS, and PeerStripe on the workload the
//! paper's introduction motivates — large scientific files (multimedia,
//! high-resolution medical images, weather data) archived onto the spare disk
//! space of an office full of desktops.
//!
//! This is a miniature version of the paper's Figures 7–9 / Table 1 experiment.
//!
//! Run with: `cargo run --release --example desktop_grid_archive`

use peerstripe::baselines::{Cfs, CfsConfig, Past, PastConfig};
use peerstripe::core::{ClusterConfig, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::sim::{ByteSize, DetRng};
use peerstripe::trace::TraceConfig;

fn main() {
    // A department with 300 desktops contributing N(45 GB, 10 GB) each, and an
    // archive of large files matching the paper's trace statistics, sized to
    // roughly 64% of the total contributed capacity.
    let nodes = 300;
    let files = nodes * 120;
    let seed = 99;
    let trace = TraceConfig::scaled(files).generate(seed);
    println!(
        "archiving {} files ({}) onto {} desktops\n",
        trace.len(),
        trace.total_size(),
        nodes
    );

    let build_cluster = || {
        let mut rng = DetRng::new(seed);
        ClusterConfig::scaled(nodes).build(&mut rng)
    };

    // The three systems run on identically seeded pools.
    let mut past = Past::new(
        build_cluster(),
        PastConfig {
            retries: 0,
            ..PastConfig::default()
        },
    );
    let mut cfs = Cfs::new(
        build_cluster(),
        CfsConfig {
            retries_per_block: 8,
            ..CfsConfig::paper_simulation()
        },
    );
    let mut ours = PeerStripe::new(
        build_cluster(),
        PeerStripeConfig {
            max_chunk_size: Some(ByteSize::mb(96)),
            ..PeerStripeConfig::paper_simulation()
        },
    );

    for file in &trace.files {
        let _ = past.store_file(file);
        let _ = cfs.store_file(file);
        let _ = ours.store_file(file);
    }

    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>16} {:>14}",
        "system", "failed stores", "failed data", "utilization", "chunks per file", "chunk size"
    );
    for system in [&past as &dyn StorageSystem, &cfs, &ours] {
        let m = system.metrics();
        println!(
            "{:<12} {:>13.1}% {:>13.1}% {:>13.1}% {:>16.2} {:>14}",
            system.name(),
            m.failed_store_pct(),
            m.failed_bytes_pct(),
            system.utilization() * 100.0,
            m.mean_chunks_per_file(),
            m.mean_chunk_size(),
        );
    }

    println!(
        "\nPeerStripe reduced failed stores by {:.1}x vs PAST and {:.1}x vs CFS \
         (the paper reports 7.0x and 2.9x at 10,000-node scale).",
        past.metrics().failed_store_pct() / ours.metrics().failed_store_pct().max(0.01),
        cfs.metrics().failed_store_pct() / ours.metrics().failed_store_pct().max(0.01),
    );
}
