//! Quick start: build a contributory storage pool, store a file that no single
//! participant could hold, read part of it back, and survive a failure.
//!
//! Run with: `cargo run --example quickstart`

use peerstripe::core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::sim::{ByteSize, DetRng};
use peerstripe::trace::{CapacityModel, FileRecord};

fn main() {
    // 1. Sixty-four desktops join the overlay, each contributing a few hundred
    //    megabytes of spare disk (kept small so the byte-level demo is instant).
    let mut rng = DetRng::new(2026);
    let cluster = ClusterConfig {
        nodes: 64,
        capacity: CapacityModel::Uniform {
            lo: ByteSize::mb(64),
            hi: ByteSize::mb(256),
        },
        report_fraction: 1.0,
        track_objects: true,
    }
    .build(&mut rng);
    println!(
        "pool: {} nodes, {} contributed in total",
        cluster.node_count(),
        cluster.total_capacity()
    );

    // 2. Create a PeerStripe instance with the paper's (2,3) XOR coding so every
    //    chunk survives the loss of one of its blocks.
    let mut storage = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(CodingPolicy::xor_2_3()),
    );

    // 3. Store real bytes: a 4 MB "medical image" (any single block of it is
    //    spread over several contributors).
    let image: Vec<u8> = (0..4 * 1024 * 1024u32)
        .map(|i| ((i.wrapping_mul(2654435761)) >> 24) as u8)
        .collect();
    let outcome = storage.store_data("mri-scan-0007", &image);
    println!("store outcome: {:?}", outcome);
    assert!(outcome.is_stored());

    let manifest = storage
        .manifest("mri-scan-0007")
        .expect("manifest recorded");
    println!(
        "placed as {} chunk(s) over {} distinct nodes (CAT replicated on {} nodes)",
        manifest.chunks.len(),
        manifest
            .all_blocks()
            .map(|b| b.node)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        manifest.cat_nodes.len()
    );

    // 4. Read a byte range back — only the chunks covering the range are touched.
    let slice = storage
        .retrieve_range_data("mri-scan-0007", 1_000_000, 64)
        .expect("range read");
    assert_eq!(slice, &image[1_000_000..1_000_064]);
    println!("range read of 64 bytes at offset 1,000,000 verified");

    // 5. Fail a node that holds one of the blocks; the file stays available and
    //    the lost block is regenerated elsewhere.
    let victim = manifest.chunks[0].blocks[0].node;
    let takeover = storage.cluster_mut().fail_node(victim).expect("takeover");
    println!(
        "node {victim} failed; file still available: {}",
        storage.is_file_available("mri-scan-0007")
    );
    let report = storage.handle_node_failure(victim, &takeover);
    println!(
        "recovery: {} block(s) regenerated ({}), {} chunk(s) lost",
        report.blocks_regenerated, report.bytes_regenerated, report.chunks_lost
    );

    // 6. The data still reads back bit-for-bit after the failure and recovery.
    let restored = storage.retrieve_data("mri-scan-0007").expect("full read");
    assert_eq!(restored, image);
    println!("full read-back verified after failure + recovery");

    // 7. The metadata path scales to files no participant could hold: store a
    //    2 GB dataset descriptor (sizes only, no payload) and inspect the CAT.
    let big = FileRecord::new("climate-ensemble.tar", ByteSize::gb(2));
    assert!(storage.store_file(&big).is_stored());
    let chunks = storage
        .manifest("climate-ensemble.tar")
        .unwrap()
        .chunks
        .len();
    println!("2 GB dataset stored as {chunks} varying-size chunks");
}
