//! Networked deployment: spawn a localhost ring of real `peerstripe-node`
//! daemon processes, store a file through the TCP gateway with the unchanged
//! client + placement + erasure stack, kill one daemon, and watch the file
//! survive a degraded read and the repair path.
//!
//! Build the daemon first, then run the example:
//!
//! ```text
//! cargo build -p peerstripe-net --bin peerstripe-node
//! cargo run --example network_ring
//! ```

use peerstripe::core::{CodingPolicy, PeerStripe, PeerStripeConfig};
use peerstripe::net::{node_binary, GatewayConfig, LocalRing};
use peerstripe::sim::{ByteSize, DetRng};

const NODES: usize = 8;

fn main() {
    // 1. Find the daemon binary and spawn eight of them on ephemeral
    //    localhost ports. Each daemon owns one node's contributed store and
    //    speaks the framed wire protocol.
    let Some(bin) = node_binary() else {
        eprintln!(
            "peerstripe-node binary not found.\n\
             Build it first: cargo build -p peerstripe-net --bin peerstripe-node\n\
             (or set PEERSTRIPE_NODE_BIN to its path)"
        );
        std::process::exit(2);
    };
    let mut ring =
        LocalRing::spawn(&bin, NODES, ByteSize::mb(64)).expect("spawning localhost daemons");
    println!("spawned {} daemons:", ring.len());
    for e in ring.endpoints() {
        println!("  node {} @ {}", e.node, e.addr);
    }

    // 2. A gateway over the ring implements the same traits as the
    //    simulator, so the PeerStripe client works unchanged. (5, 3)
    //    Reed-Solomon spreads every chunk over all eight daemons.
    let gateway = ring.gateway(GatewayConfig::default());
    let mut storage = PeerStripe::new(
        gateway,
        PeerStripeConfig {
            coding: CodingPolicy::ReedSolomon { data: 5, parity: 3 },
            ..PeerStripeConfig::default()
        },
    );

    // 3. Store half a megabyte of real bytes over TCP and read it back.
    let mut rng = DetRng::new(42);
    let data: Vec<u8> = (0..512 * 1024).map(|_| rng.next_u64() as u8).collect();
    let outcome = storage.store_data("telemetry.parquet", &data);
    println!("store outcome: {outcome:?}");
    assert!(outcome.is_stored());
    assert_eq!(
        storage.retrieve_data("telemetry.parquet").as_deref(),
        Some(&data[..])
    );
    println!(
        "stored and read back {} over the wire",
        ByteSize::bytes(data.len() as u64)
    );

    // 4. Kill a daemon that holds blocks of the file — a real SIGKILL to a
    //    real process, not a simulator flag.
    let manifest = storage.manifest("telemetry.parquet").expect("manifest");
    let victim = (0..NODES)
        .find(|&n| {
            manifest
                .chunks
                .iter()
                .any(|c| c.blocks_on(n).next().is_some())
        })
        .expect("some daemon holds a block");
    ring.kill(victim).expect("killing the daemon");
    println!("killed daemon {victim}");

    // 5. Degraded read: fetches to the dead daemon fail over TCP and the
    //    erasure decoder reconstructs every chunk from the survivors.
    assert_eq!(
        storage.retrieve_data("telemetry.parquet").as_deref(),
        Some(&data[..])
    );
    println!("degraded read succeeded with daemon {victim} down");

    // 6. Declare the failure and repair: lost blocks are regenerated from
    //    survivors and re-placed on live daemons.
    let takeover = storage
        .backend_mut()
        .mark_failed(victim)
        .expect("victim was a ring member");
    let report = storage.handle_node_failure(victim, &takeover);
    println!(
        "repair regenerated {} blocks ({} chunks unrecoverable)",
        report.blocks_regenerated, report.chunks_lost
    );
    assert_eq!(report.chunks_lost, 0);
    assert_eq!(
        storage.retrieve_data("telemetry.parquet").as_deref(),
        Some(&data[..])
    );
    println!("file fully recovered after repair");

    // 7. The gateway counted every RPC with latency histograms.
    let export = storage.backend().export_metrics();
    println!("\nper-RPC telemetry:");
    for c in export
        .counters
        .iter()
        .filter(|c| c.name == "gateway_rpc_total" && c.value > 0)
    {
        let op = c
            .labels
            .iter()
            .find(|(k, _)| k == "op")
            .map(|(_, v)| v.as_str());
        println!("  {:<14} {} calls", op.unwrap_or("?"), c.value);
    }

    // 8. Shut the survivors down gracefully (drop would SIGKILL them).
    for e in ring.endpoints() {
        if e.node != victim {
            storage.backend().shutdown_node(e.node);
        }
    }
    println!("\nall daemons shut down");
}
