//! Outage-aware failure detection: why a lab outage should not trigger a
//! regeneration wave.
//!
//! A desktop grid's labs power down overnight.  A per-node failure detector
//! with an aggressive permanence timeout declares every member of a downed
//! lab dead independently, regenerates all their blocks — and throws that
//! work away when the lab comes back in the morning.  This example drives the
//! same deployment through the same 72 h of grouped churn twice: once under
//! the classic per-node timeout and once under the outage-aware policy, which
//! holds declarations while ≥θ of a lab is absent and cancels them wholesale
//! when the lab returns.
//!
//! Run with `cargo run --example outage_aware_detection`.

use peerstripe::core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe::placement::Topology;
use peerstripe::repair::{
    BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, GroupedChurn, MaintenanceEngine,
    MaintenanceReport, OutageAwareConfig, RepairConfig, RepairPolicy, SessionModel,
};
use peerstripe::sim::{ByteSize, DetRng, SimTime};
use peerstripe::trace::{CapacityModel, FileRecord};

/// Deploy 30 files over 60 nodes (6 labs of 10) and run 72 h of churn in
/// which labs suffer ~12 h outages against a 4 h permanence timeout.
fn run(detection: DetectionKind) -> MaintenanceReport {
    let mut rng = DetRng::new(2026);
    let cluster = ClusterConfig {
        nodes: 60,
        capacity: CapacityModel::Fixed(ByteSize::gb(4)),
        report_fraction: 1.0,
        track_objects: true,
    }
    .build(&mut rng);
    let mut storage = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
    );
    for i in 0..30 {
        assert!(storage
            .store_file(&FileRecord::new(format!("archive-{i}"), ByteSize::mb(200)))
            .is_stored());
    }
    let manifests = storage.manifests().clone();
    let topology = Topology::uniform_groups(60, 10);
    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: 24.0 * 3_600.0,
            mean_downtime_secs: 2.0 * 3_600.0,
        },
        permanent_fraction: 0.0,
        // Each lab suffers an outage every ~24 h, lasting ~12 h.
        grouped: Some(GroupedChurn::new(topology, 24.0, 12.0)),
    };
    let config = RepairConfig {
        policy: RepairPolicy::Eager,
        // 4 h permanence timeout: every 12 h outage outlives it.
        detector: DetectorConfig::default_desktop_grid().with_timeout(4.0 * 3_600.0),
        detection,
        bandwidth: BandwidthBudget::symmetric(ByteSize::mb(4)),
        sample_period_secs: 3_600.0,
    };
    let mut engine =
        MaintenanceEngine::new(storage.into_cluster(), &manifests, churn, config, 2026);
    engine.run_for(SimTime::from_secs(72 * 3_600));
    engine.report()
}

fn main() {
    println!("pool: 60 nodes in 6 labs of 10; ~12 h lab outages vs a 4 h permanence timeout\n");
    let mut reports = Vec::new();
    for detection in [
        DetectionKind::PerNodeTimeout,
        DetectionKind::OutageAware(OutageAwareConfig::default_desktop_grid()),
    ] {
        let report = run(detection);
        println!("{}:", report.detector);
        println!(
            "  repair traffic: {} ({:.2} per useful byte), {:.0}% of it wasted",
            report.repair_bytes,
            report.repair_per_useful_byte,
            100.0 * report.wasted_repair_fraction()
        );
        println!(
            "  declarations: {} false, {} held as outages, {} holds cancelled by returns",
            report.false_declarations, report.declarations_held, report.held_cancelled
        );
        println!(
            "  durability: {} of {} files lost, availability {:.1}% mean\n",
            report.files_lost, report.files_total, report.availability_mean_pct
        );
        reports.push(report);
    }
    let (per_node, aware) = (&reports[0], &reports[1]);
    let ratio = per_node.repair_bytes.as_u64() as f64 / aware.repair_bytes.as_u64().max(1) as f64;
    println!(
        "outage-aware detection spends {ratio:.1}x less repair traffic on the same churn, \
         losing {} vs {} files",
        aware.files_lost, per_node.files_lost
    );
}
